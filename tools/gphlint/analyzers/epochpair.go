package analyzers

import (
	"go/ast"
	"go/types"

	"gph/tools/gphlint/internal/cfg"
	"gph/tools/gphlint/internal/dataflow"
	"gph/tools/gphlint/internal/lint"
)

// EpochPair checks the shard layer's snapshot-invalidation pairing
// (the PR 8 rule): result caches are keyed on (query, shard epoch),
// so every publication of a new snapshot — a Store, Swap or
// CompareAndSwap on an atomic.Pointer[S] cell where S is a
// //gph:snapshot type — must be post-dominated by a bump of the
// //gph:epoch-annotated counter before the function returns. A store
// whose function can exit without bumping leaves the cache serving
// results computed against the replaced snapshot.
//
// The check is a backward must-analysis over the function's CFG:
// "every path from here reaches an epoch Add before the normal
// exit". Panic paths are vacuous (the process is going down, not
// serving stale results). A CompareAndSwap used as a branch
// condition only requires the bump on its success edge.
//
// Initialization-time stores — constructors and load paths that
// publish the first snapshot before any reader exists — are the
// deliberate exceptions, suppressed in place with
// //gphlint:ignore epochpair <reason>.
var EpochPair = &lint.Analyzer{
	Name: "epochpair",
	Doc:  "snapshot Store/Swap/CompareAndSwap must be post-dominated by an epoch bump before function exit",
	Run:  runEpochPair,
}

func runEpochPair(pass *lint.Pass) error {
	if !pass.InModule() {
		return nil
	}
	if !pkgPathHasSuffix(pass.Pkg.Path(), "internal/shard") {
		return nil
	}
	snapTypes := collectSnapshotTypes(pass)
	if len(snapTypes) == 0 {
		return nil
	}
	epochFields := collectEpochFields(pass)
	if len(epochFields) == 0 {
		return nil
	}
	ep := &epochChecker{pass: pass, snapTypes: snapTypes, epochFields: epochFields}
	graphs := sharedCFGs(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ep.check(graphs.decl(fn), fn.Name.Name)
			for _, lit := range funcLits(fn.Body) {
				ep.check(graphs.lit(lit), fn.Name.Name+" (func literal)")
			}
		}
	}
	return nil
}

// collectEpochFields resolves every struct field annotated
// //gph:epoch to its object.
func collectEpochFields(pass *lint.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fl := range st.Fields.List {
				if !lint.HasAnnotation(fl.Doc, "gph:epoch") && !lint.HasAnnotation(fl.Comment, "gph:epoch") {
					continue
				}
				for _, name := range fl.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

type epochChecker struct {
	pass        *lint.Pass
	snapTypes   map[*types.Named]bool
	epochFields map[types.Object]bool
}

// snapStoreIn returns the snapshot-publication calls nested in n
// (shallow: closures are separate graphs).
func (ep *epochChecker) snapStoreIn(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	shallowInspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Store", "Swap", "CompareAndSwap":
		default:
			return true
		}
		t := ep.pass.TypesInfo.TypeOf(sel.X)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if isAtomicSnapshotPtr(t, ep.snapTypes) {
			out = append(out, call)
		}
		return true
	})
	return out
}

// hasBump reports whether n contains a call to Add on an annotated
// epoch field.
func (ep *epochChecker) hasBump(n ast.Node) bool {
	found := false
	shallowInspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj := ep.pass.TypesInfo.Uses[field.Sel]; obj != nil && ep.epochFields[obj] {
			found = true
		}
		return true
	})
	return found
}

var mustLattice = dataflow.Lattice[bool]{
	Join:  func(a, b bool) bool { return a && b },
	Equal: func(a, b bool) bool { return a == b },
}

func (ep *epochChecker) check(g *cfg.Graph, fnName string) {
	// Fast path: no publication in this function.
	any := false
	for _, b := range g.Blocks {
		blockNodesAndCond(b, func(n ast.Node) {
			if len(ep.snapStoreIn(n)) > 0 {
				any = true
			}
		})
		if any {
			break
		}
	}
	if !any {
		return
	}

	res := dataflow.Backward(g,
		func(b *cfg.Block) bool { return b == g.PanicExit }, // vacuous on panic paths
		mustLattice,
		func(b *cfg.Block, out bool) bool {
			bumped := out
			if b.Cond != nil && ep.hasBump(b.Cond) {
				bumped = true
			}
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				if ep.hasBump(b.Nodes[i]) {
					bumped = true
				}
			}
			return bumped
		}, nil)

	report := func(call *ast.CallExpr) {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		ep.pass.Reportf(call.Pos(),
			"snapshot %s is not post-dominated by an epoch bump before %s returns; epoch-keyed result caches would keep serving the replaced snapshot (pair it with an Add on the //gph:epoch counter)",
			sel.Sel.Name, fnName)
	}

	for _, b := range g.Blocks {
		out, solved := res.Out[b]
		if !solved {
			continue // unreachable
		}
		// Walk backward through the block computing, for each node,
		// whether a bump still lies ahead on every path.
		if b.Cond != nil {
			for _, call := range ep.snapStoreIn(b.Cond) {
				sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if sel.Sel.Name == "CompareAndSwap" {
					// Publication happened only if the branch
					// succeeded: the bump is required on the True
					// edge alone.
					ok := false
					for _, e := range b.Succs {
						if e.Kind == cfg.True {
							if in, solved := res.In[e.To]; solved && in {
								ok = true
							}
						}
					}
					if !ok {
						report(call)
					}
				} else if !out {
					report(call)
				}
			}
		}
		state := out
		if b.Cond != nil && ep.hasBump(b.Cond) {
			state = true
		}
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			n := b.Nodes[i]
			if !state && !ep.hasBump(n) {
				for _, call := range ep.snapStoreIn(n) {
					report(call)
				}
			}
			if ep.hasBump(n) {
				state = true
			}
		}
	}
}
