package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gph/tools/gphlint/internal/lint"
)

// AllocFacts is the package fact hotpath exports: a per-function
// summary of banned constructs and module-local callees, so a query
// path annotated in one package is checked through the helpers it
// calls in another (core probing into invindex, shard fanning out
// into core).
type AllocFacts struct {
	// Fns lists the package's function summaries sorted by qualified
	// name (a sorted slice, not a map, so the gob bytes are stable
	// for the build cache).
	Fns []FnEntry
}

// AFact marks AllocFacts as a lint fact.
func (*AllocFacts) AFact() {}

// FnEntry pairs a function's qualified name with its summary.
type FnEntry struct {
	// QName is the module-wide qualified name, as funcQName renders
	// it.
	QName string
	// Summary is the function's banned constructs and callees.
	Summary FnSummary
}

// FnSummary is what hotpath records about one function.
type FnSummary struct {
	// Viols lists the banned constructs in the function body.
	Viols []Viol
	// Callees lists the module-local functions it statically calls.
	Callees []CalleeRef
}

// Viol is one banned construct.
type Viol struct {
	// What names the construct ("defer", "closure capturing ...").
	What string
	// Pos is its site, "file:line" with the file base name.
	Pos string
}

// CalleeRef is one static call to a module-local function.
type CalleeRef struct {
	// QName is the callee's qualified name.
	QName string
	// Pos is the call site, "file:line".
	Pos string
}

// Hotpath checks that functions annotated //gph:hotpath — the
// per-query search paths whose allocs/op the benchmarks pin at zero —
// avoid constructs that allocate or add per-call overhead, in the
// function itself and transitively through every module-local
// function it statically calls. Banned: fmt.* calls (except directly
// inside a return statement — the error-exit idiom), string<->[]byte
// conversions, map allocation (make or literal), defer, closures
// capturing enclosing variables, and method values not immediately
// called. Dynamic calls (interface methods, function values) are not
// followed.
var Hotpath = &lint.Analyzer{
	Name:      "hotpath",
	Doc:       "//gph:hotpath functions and their module-local callees avoid allocating constructs",
	FactTypes: []lint.Fact{(*AllocFacts)(nil)},
	Run:       runHotpath,
}

// localFn is the in-package view of a function summary, with real
// token positions for reporting.
type localFn struct {
	viols     []localViol
	callees   []localCallee
	annotated bool
}

type localViol struct {
	pos  token.Pos
	what string
	// suppressed viols are still reported locally — the driver flags
	// them so -json and the staleness check see the masked finding —
	// but are dropped from the exported facts so they cannot resurface
	// at call sites in downstream packages.
	suppressed bool
}

type localCallee struct {
	qname string
	pos   token.Pos
}

func runHotpath(pass *lint.Pass) error {
	if !pass.InModule() {
		return nil
	}

	// Pass 1: summarize every function in the package.
	locals := map[string]*localFn{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			q := declQName(pass.TypesInfo, fn)
			if q == "" {
				continue
			}
			lf := summarizeFn(pass, fn)
			lf.annotated = lint.HasAnnotation(fn.Doc, "gph:hotpath")
			locals[q] = lf
		}
	}

	// Pass 2: pull in the summaries of imported module packages.
	remote := map[string]FnSummary{}
	for _, pf := range pass.AllPackageFacts() {
		af, ok := pf.Fact.(*AllocFacts)
		if !ok || pf.Path == pass.Pkg.Path() {
			continue
		}
		for _, e := range af.Fns {
			remote[e.QName] = e.Summary
		}
	}

	// Pass 3: from each annotated root, report local violations at
	// their own positions and remote ones at the local call site.
	resolve := newRemoteResolver(remote)
	visited := map[string]bool{}
	var visit func(q string)
	visit = func(q string) {
		if visited[q] {
			return
		}
		visited[q] = true
		lf, ok := locals[q]
		if !ok {
			return
		}
		for _, v := range lf.viols {
			if v.suppressed {
				continue // reported once for every function below
			}
			pass.Reportf(v.pos, "hot path: %s", v.what)
		}
		for _, c := range lf.callees {
			if _, local := locals[c.qname]; local {
				visit(c.qname)
				continue
			}
			if desc := resolve(c.qname); desc != "" {
				pass.Reportf(c.pos, "hot path: call to %s reaches %s", c.qname, desc)
			}
		}
	}
	for q, lf := range locals {
		if lf.annotated {
			visit(q)
		}
	}

	// Suppressed viols are reported (masked) for every function, not
	// just those reachable from an in-package hot root: packages like
	// alloc hold no roots of their own but are called from hot paths
	// elsewhere, and their suppressions earn their keep by keeping the
	// viol out of the exported facts below. Reporting here gives -json
	// consumers and the staleness check a finding to match the
	// //gphlint:ignore comment against.
	for _, lf := range locals {
		for _, v := range lf.viols {
			if v.suppressed {
				pass.Reportf(v.pos, "hot path: %s", v.what)
			}
		}
	}

	// Export this package's summaries for downstream packages. Clean
	// leaf functions (no violations, no module callees) carry no
	// information and are omitted.
	fact := &AllocFacts{}
	for q, lf := range locals {
		if len(lf.viols) == 0 && len(lf.callees) == 0 {
			continue
		}
		s := FnSummary{}
		for _, v := range lf.viols {
			if v.suppressed {
				continue
			}
			p := pass.Fset.Position(v.pos)
			s.Viols = append(s.Viols, Viol{What: v.what, Pos: shortPos(p.Filename, p.Line)})
		}
		if len(s.Viols) == 0 && len(lf.callees) == 0 {
			continue
		}
		for _, c := range lf.callees {
			p := pass.Fset.Position(c.pos)
			s.Callees = append(s.Callees, CalleeRef{QName: c.qname, Pos: shortPos(p.Filename, p.Line)})
		}
		fact.Fns = append(fact.Fns, FnEntry{QName: q, Summary: s})
	}
	if len(fact.Fns) > 0 {
		sort.Slice(fact.Fns, func(i, j int) bool { return fact.Fns[i].QName < fact.Fns[j].QName })
		pass.ExportPackageFact(fact)
	}
	return nil
}

// newRemoteResolver returns a memoized, cycle-safe lookup that
// describes the first banned construct reachable from a remote
// function, or "" if its transitive closure is clean. Functions with
// no summary (standard library, clean leaves) are clean by
// definition.
func newRemoteResolver(remote map[string]FnSummary) func(qname string) string {
	memo := map[string]string{}
	visiting := map[string]bool{}
	var resolve func(q string) string
	resolve = func(q string) string {
		if d, ok := memo[q]; ok {
			return d
		}
		if visiting[q] {
			return "" // cycle: judged by its other paths
		}
		visiting[q] = true
		defer delete(visiting, q)
		s, ok := remote[q]
		desc := ""
		if ok {
			if len(s.Viols) > 0 {
				desc = fmt.Sprintf("%s (%s)", s.Viols[0].What, s.Viols[0].Pos)
			} else {
				for _, c := range s.Callees {
					if d := resolve(c.QName); d != "" {
						desc = fmt.Sprintf("%s: %s", c.QName, d)
						break
					}
				}
			}
		}
		memo[q] = desc
		return desc
	}
	return resolve
}

// summarizeFn walks one function body collecting banned constructs
// and module-local static callees. Suppressed sites (a
// //gphlint:ignore hotpath comment) are kept, flagged, so the local
// report still surfaces them for -json consumers; fact export drops
// them so they cannot resurface in a downstream package.
func summarizeFn(pass *lint.Pass, fn *ast.FuncDecl) *localFn {
	lf := &localFn{}
	addViol := func(pos token.Pos, what string) {
		lf.viols = append(lf.viols, localViol{pos, what, pass.Suppressed(pos)})
	}
	modPrefix := pass.ModulePath + "/"

	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			addViol(n.Pos(), "defer (per-call scheduling overhead; release resources explicitly)")
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					addViol(n.Pos(), "map literal allocates")
				}
			}
		case *ast.FuncLit:
			if capturesEnclosing(pass.TypesInfo, fn, n) {
				addViol(n.Pos(), "closure capturing enclosing variables allocates")
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if !immediatelyCalled(stack) {
					addViol(n.Pos(), "method value allocates; call the method directly or bind once at setup")
				}
			}
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
				src := pass.TypesInfo.TypeOf(n.Args[0])
				dst := tv.Type
				if src != nil && (isString(dst) && isByteSlice(src) || isByteSlice(dst) && isString(src)) {
					addViol(n.Pos(), "string<->[]byte conversion allocates and copies")
				}
				return true
			}
			callee := staticCallee(pass.TypesInfo, n)
			if callee == nil {
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if t := pass.TypesInfo.TypeOf(n); t != nil {
							if _, isMap := t.Underlying().(*types.Map); isMap {
								addViol(n.Pos(), "make(map) allocates")
							}
						}
					}
				}
				return true
			}
			switch path := calleePkgPath(callee); {
			case path == "fmt":
				if !onErrorExit(stack) {
					addViol(n.Pos(), "fmt."+callee.Name()+" allocates (allowed only inside a return statement or a panic argument)")
				}
			case path == pass.ModulePath || strings.HasPrefix(path, modPrefix):
				lf.callees = append(lf.callees, localCallee{funcQName(callee), n.Pos()})
			}
		}
		return true
	})
	return lf
}

// capturesEnclosing reports whether the function literal references a
// variable declared in the enclosing function (parameters included)
// outside the literal itself — the case where the closure's
// environment is heap-allocated.
func capturesEnclosing(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= enclosing.Pos() && v.Pos() < enclosing.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured = true
		}
		return true
	})
	return captured
}

// immediatelyCalled reports whether the node at the top of the stack
// is the function operand of a call expression (allowing parentheses
// in between).
func immediatelyCalled(stack []ast.Node) bool {
	node := stack[len(stack)-1].(ast.Expr)
	i := len(stack) - 2
	for i >= 0 {
		p, ok := stack[i].(*ast.ParenExpr)
		if !ok {
			break
		}
		node = p
		i--
	}
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	return ok && call.Fun == node
}

// onErrorExit reports whether any open ancestor is a return statement
// or a call to the panic builtin — the error-exit idioms where a
// fmt.Errorf or fmt.Sprintf runs only on failure, never on the warm
// path the benchmarks measure.
func onErrorExit(stack []ast.Node) bool {
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
