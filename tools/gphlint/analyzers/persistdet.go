package analyzers

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"gph/tools/gphlint/internal/lint"
)

// PersistDet checks that persistence code is deterministic: the
// serialized form of an index must be byte-stable across processes
// (save→load→save equality is pinned by tests, and the WAL/snapshot
// protocols compare file hashes). Inside persistence scope — any
// file named persist.go, plus the whole invindex (frozen arena
// writer), binio (serialization substrate) and mmapio (mapped open
// path) packages — it flags:
//
//   - iteration over a map that is not followed by an explicit sort
//     in the same function (map order would leak into the bytes);
//   - time.Now / time.Since (wall-clock in serialized state);
//   - the global math/rand generators (seeded process-wide, not from
//     build options).
var PersistDet = &lint.Analyzer{
	Name: "persistdet",
	Doc:  "persistence code is deterministic: no unsorted map ranges, wall-clock or global rand",
	Run:  runPersistDet,
}

func runPersistDet(pass *lint.Pass) error {
	if !pass.InModule() {
		return nil
	}
	wholePkg := false
	for _, pkg := range []string{"invindex", "binio", "mmapio"} {
		if pkgPathHasSuffix(pass.Pkg.Path(), "internal/"+pkg) || pkgPathHasSuffix(pass.Pkg.Path(), pkg) {
			wholePkg = true
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if !wholePkg && name != "persist.go" {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPersistFunc(pass, fn)
		}
	}
	return nil
}

func checkPersistFunc(pass *lint.Pass, fn *ast.FuncDecl) {
	// Gather the end offsets of sort calls first: a map range is
	// acceptable when the function establishes an explicit order
	// after it (collect keys, sort, then iterate sorted).
	var sortEnds []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && sortCallNames[callFullName(pass.TypesInfo, call)] {
			sortEnds = append(sortEnds, call)
		}
		return true
	})
	sortedAfter := func(n ast.Node) bool {
		for _, s := range sortEnds {
			if s.Pos() > n.Pos() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap && !sortedAfter(n) {
				pass.Reportf(n.Pos(), "map iteration feeds persistence without an intervening sort; serialized bytes would depend on map order")
			}
		case *ast.CallExpr:
			switch full := callFullName(pass.TypesInfo, n); full {
			case "time.Now", "time.Since":
				pass.Reportf(n.Pos(), "%s in persistence code; serialized state must not depend on wall-clock time", full)
			default:
				if isGlobalRandCall(full) {
					pass.Reportf(n.Pos(), "global %s in persistence code; route randomness through a seeded rand.New(rand.NewSource(...)) carried in options", full)
				}
			}
		}
		return true
	})
}

// isGlobalRandCall reports whether full names a package-level
// math/rand (or math/rand/v2) function that draws from the global,
// process-seeded source. Constructors for explicitly seeded
// generators are the sanctioned alternative and stay allowed.
func isGlobalRandCall(full string) bool {
	var rest string
	switch {
	case strings.HasPrefix(full, "math/rand/v2."):
		rest = strings.TrimPrefix(full, "math/rand/v2.")
	case strings.HasPrefix(full, "math/rand."):
		rest = strings.TrimPrefix(full, "math/rand.")
	default:
		return false
	}
	switch rest {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}
