// Package analyzers holds gphlint's ten analyzers, each encoding one
// of the repository's load-bearing invariants: hotpath
// (allocation-free annotated query paths), borrowalias (zero-copy
// arena borrows on the mapped open path), snapshotsafety (immutable
// published shard snapshots), errsentinel (sentinel-wrapped query
// validation errors), persistdet (deterministic persistence),
// magicreg (unique 8-byte persistence magics), doccheck (the
// documentation gate), and — built on the internal/cfg +
// internal/dataflow engine (DESIGN.md §15) — the three path-sensitive
// pairing analyzers: leakcheck (resources released on every path),
// epochpair (snapshot stores post-dominated by an epoch bump) and
// lockorder (module-wide lock ordering and the
// no-fsync-under-writer-lock rule). See DESIGN.md §11 for how to
// suppress a finding.
package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"gph/tools/gphlint/internal/lint"
)

// All returns the complete analyzer suite in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		Hotpath,
		BorrowAlias,
		SnapshotSafety,
		ErrSentinel,
		PersistDet,
		MagicReg,
		DocCheck,
		LeakCheck,
		EpochPair,
		LockOrder,
	}
}

// walkStack visits every node of root in source order, passing the
// stack of open ancestors (root first, the node itself last). The
// visit function returns false to skip the node's children.
func walkStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !visit(n, stack) {
			// Children are skipped; pop now because the nil pop-back
			// will not arrive.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// staticCallee resolves a call expression to the *types.Func it
// statically invokes: package-level functions, and methods called on
// concrete (non-interface) receivers. Dynamic calls — interface
// methods, function values — resolve to nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok && !types.IsInterface(sel.Recv()) {
				return f
			}
			return nil
		}
		// No selection entry: a package-qualified identifier pkg.F.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcQName returns the module-wide qualified name of fn, e.g.
// "gph/internal/core.(*Index).search" — the key the cross-package
// fact maps use.
func funcQName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name() // error.Error and friends
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
			ptr = "*"
		}
		name := "?"
		if n, okn := t.(*types.Named); okn {
			name = n.Obj().Name()
		}
		return fn.Pkg().Path() + ".(" + ptr + name + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// declQName returns the qualified name of a function declaration in
// the package under analysis, or "" if it lacks type information.
func declQName(info *types.Info, decl *ast.FuncDecl) string {
	fn, ok := info.Defs[decl.Name].(*types.Func)
	if !ok {
		return ""
	}
	return funcQName(fn)
}

// calleePkgPath returns the defining package path of fn ("" for
// builtins and universe-scope functions).
func calleePkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// constString returns the compile-time string value of expr, if it
// has one (string literals, named string constants, constant
// concatenations).
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isByteSlice reports whether t's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pkgPathHasSuffix reports whether path equals suffix or ends in
// "/"+suffix — how analyzers scope themselves to repo packages while
// letting test fixtures mirror those paths under shorter roots.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// sortCallNames is the set of standard-library calls persistdet
// accepts as establishing a deterministic order after a map
// iteration collected keys.
var sortCallNames = map[string]bool{
	"sort.Sort": true, "sort.Stable": true, "sort.Slice": true, "sort.SliceStable": true,
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// callFullName returns "pkgpath.Func" for static package-level
// calls, "" otherwise.
func callFullName(info *types.Info, call *ast.CallExpr) string {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}
