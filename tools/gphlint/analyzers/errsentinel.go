package analyzers

import (
	"go/ast"
	"strings"

	"gph/tools/gphlint/internal/lint"
)

// ErrSentinel checks that errors constructed on engine query entry
// points wrap a sentinel. Servers classify failures with
// errors.Is(err, engine.ErrInvalidQuery): a validation error built
// with a plain fmt.Errorf (no %w verb) or errors.New on a Search
// path is unmatchable and surfaces as HTTP 500 instead of 400 — the
// exact drift PR 3 fixed once by hand and this analyzer now pins.
//
// Entry points are methods named Search, SearchStats, SearchKNN or
// SearchBatch whose last result is error; the check propagates
// through same-package functions they call (engines route entry
// points through unexported helpers like (*Index).search).
var ErrSentinel = &lint.Analyzer{
	Name: "errsentinel",
	Doc:  "errors on Search/KNN/Batch paths wrap a sentinel (%w), so servers can classify them",
	Run:  runErrSentinel,
}

// entryMethodNames are the engine-contract query methods whose error
// returns servers classify.
var entryMethodNames = map[string]bool{
	"Search": true, "SearchStats": true, "SearchKNN": true, "SearchBatch": true,
}

func runErrSentinel(pass *lint.Pass) error {
	if !pass.InModule() {
		return nil
	}

	// Index every function declaration in the package by qualified
	// name, then walk the same-package call graph from the entry
	// methods.
	decls := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if q := declQName(pass.TypesInfo, fn); q != "" {
					decls[q] = fn
				}
			}
		}
	}

	reachable := map[string]bool{}
	var mark func(q string)
	mark = func(q string) {
		if reachable[q] {
			return
		}
		fn, ok := decls[q]
		if !ok {
			return
		}
		reachable[q] = true
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pass.TypesInfo, call)
			if callee == nil || calleePkgPath(callee) != pass.Pkg.Path() {
				return true
			}
			mark(funcQName(callee))
			return true
		})
	}
	for q, fn := range decls {
		if fn.Recv != nil && entryMethodNames[fn.Name.Name] && returnsError(fn) {
			mark(q)
		}
	}

	for q := range reachable {
		fn := decls[q]
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch callFullName(pass.TypesInfo, call) {
			case "fmt.Errorf":
				if len(call.Args) == 0 {
					return true
				}
				format, known := constString(pass.TypesInfo, call.Args[0])
				if known && !strings.Contains(format, "%w") {
					pass.Reportf(call.Pos(), "fmt.Errorf without %%w on a query path; wrap an engine.Err* sentinel so servers answer 400, not 500")
				}
			case "errors.New":
				pass.Reportf(call.Pos(), "errors.New on a query path; wrap an engine.Err* sentinel so servers answer 400, not 500")
			}
			return true
		})
	}
	return nil
}

// returnsError reports whether the function's last result is error.
func returnsError(fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil || len(fn.Type.Results.List) == 0 {
		return false
	}
	last := fn.Type.Results.List[len(fn.Type.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}
