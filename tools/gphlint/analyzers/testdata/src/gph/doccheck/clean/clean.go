// Package clean has a package comment and, being outside the public
// API packages, no per-symbol obligations: the analyzer must stay
// silent.
package clean

// Exported symbols outside the public packages need no doc comments,
// though this one has one anyway.
func Exported() {}

func alsoFine() {}

var _ = alsoFine
