package nopkgdoc // want "package nopkgdoc has no package comment"

func internalOnly() {}

var _ = internalOnly
