// Package shard is a snapshotsafety fixture: its import path ends in
// internal/shard, so the analyzer treats it as the real shard
// package.
package shard

import "sync/atomic"

// state is the published snapshot.
//
//gph:snapshot
type state struct {
	ids  []int32
	dead map[int32]bool
}

// Index owns the snapshot cell.
type Index struct {
	cur atomic.Pointer[state]
}

// goodRead goes through Load, the only sanctioned read.
func goodRead(ix *Index) int {
	st := ix.cur.Load()
	return len(st.ids)
}

// badCopy hands the cell itself out, bypassing the atomic API.
func badCopy(ix *Index) *atomic.Pointer[state] {
	return &ix.cur // want "used outside Load"
}

// badWrite mutates a loaded snapshot in place from a non-writer.
func badWrite(ix *Index) {
	st := ix.cur.Load()
	st.ids = nil       // want "write to a snapshot field"
	st.dead[1] = true  // want "write to a snapshot field"
	delete(st.dead, 2) // want "write to a snapshot field"
}

// goodWriter is annotated, so building and publishing a successor
// snapshot here is allowed.
//
//gph:snapshotwriter
func goodWriter(ix *Index) {
	next := &state{dead: map[int32]bool{}}
	next.dead[1] = true
	ix.cur.Store(next)
}

// freshLiteral constructs a snapshot without touching a cell; always
// fine.
func freshLiteral() *state {
	return &state{ids: []int32{1}}
}
