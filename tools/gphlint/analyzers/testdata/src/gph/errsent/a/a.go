// Package a exercises the errsentinel analyzer: errors on query
// entry paths must wrap a sentinel with %w.
package a

import (
	"errors"
	"fmt"
)

// errBadQuery is the sentinel queries are expected to wrap.
var errBadQuery = errors.New("bad query")

// Index is a fixture engine.
type Index struct{ dims int }

// Search is an entry point; its validation runs through check, which
// is therefore in scope too.
func (ix *Index) Search(q []byte, tau int) ([]int32, error) {
	if err := ix.check(q, tau); err != nil {
		return nil, err
	}
	return nil, nil
}

// check is reached from Search, so raw error construction here is
// flagged.
func (ix *Index) check(q []byte, tau int) error {
	if len(q) != ix.dims {
		return fmt.Errorf("got %d dims, want %d", len(q), ix.dims) // want "fmt.Errorf without"
	}
	if tau < 0 {
		return errors.New("negative tau") // want "errors.New"
	}
	if tau > 64 {
		return fmt.Errorf("tau %d exceeds build bound: %w", tau, errBadQuery)
	}
	return nil
}

// Rebuild is not a query entry point, so plain errors stay legal
// here.
func (ix *Index) Rebuild() error {
	return fmt.Errorf("rebuild not supported")
}
