// Package clean is the compliant errsentinel fixture: every query
// error wraps the sentinel, so the analyzer must stay silent.
package clean

import (
	"errors"
	"fmt"
)

// ErrInvalid is the sentinel.
var ErrInvalid = errors.New("invalid query")

// Index is a fixture engine.
type Index struct{ dims int }

// Search validates inline and wraps correctly.
func (ix *Index) Search(q []byte) ([]int32, error) {
	if len(q) != ix.dims {
		return nil, fmt.Errorf("got %d dims, want %d: %w", len(q), ix.dims, ErrInvalid)
	}
	return nil, nil
}
