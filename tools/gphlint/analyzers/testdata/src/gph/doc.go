// Package gph is the doccheck fixture posing as the module's public
// root package, where every exported symbol must carry a doc comment.
package gph

// Documented has a doc comment, so it is fine.
func Documented() {}

func Undocumented() {} // want "exported function Undocumented has no doc comment"

// Config is documented.
type Config struct{}

type Bare struct{} // want "exported type Bare has no doc comment"

// Limit is documented.
const Limit = 8

const Naked = 9 // want "exported value Naked has no doc comment"

// Grouped constants count as documented through the block comment.
const (
	GroupA = 1
	GroupB = 2
)

// Apply needs its own doc comment because Config is exported.
func (Config) Apply() {}

func (Config) Reset() {} // want "exported method Reset has no doc comment"

type hidden struct{}

// Exported methods on unexported types are exempt from rule 2.
func (hidden) Exported() {}

var _ = hidden{}
