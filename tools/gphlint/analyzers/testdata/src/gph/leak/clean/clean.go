// Package clean brackets every acquisition correctly: leakcheck must
// stay silent on all of it.
package clean

import (
	"errors"
	"iter"
	"sync"

	"gph/leak/dep"
	"gph/leak/internal/mmapio"
)

var errClosed = errors.New("clean: closed")

// buf is the pooled scratch type.
type buf struct {
	ids []int32
}

// index owns a mapping and a scratch pool.
type index struct {
	m *mmapio.Mapping
	//gph:scratch
	scratch sync.Pool
}

func bad() bool { return false }

func use(*buf) {}

func work(*index) {}

// getScratch hands ownership to the caller.
//
//gph:transfer scratch
func getScratch(ix *index) *buf {
	return ix.scratch.Get().(*buf)
}

// putScratch returns scratch to the pool.
//
//gph:release scratch
func putScratch(ix *index, s *buf) {
	ix.scratch.Put(s)
}

// deferRelease releases through defer, covering every path at once.
func deferRelease(ix *index) error {
	if !ix.m.Acquire() {
		return errClosed
	}
	defer ix.m.Release()
	if bad() {
		return errClosed
	}
	work(ix)
	return nil
}

// explicitEveryPath releases by hand on each return.
func explicitEveryPath(ix *index) error {
	s := getScratch(ix)
	if bad() {
		putScratch(ix, s)
		return errClosed
	}
	use(s)
	putScratch(ix, s)
	return nil
}

// deferredClosure releases inside a deferred closure; the capture is
// cleanup, not an escape.
func deferredClosure(ix *index) {
	s := getScratch(ix)
	defer func() {
		ix.scratch.Put(s)
	}()
	use(s)
}

// holder keeps scratch beyond the function: once stored, ownership
// has escaped the analysis and the function owes no release.
type holder struct {
	s *buf
}

// escapes moves ownership into a holder.
func escapes(ix *index) *holder {
	s := getScratch(ix)
	return &holder{s: s}
}

// pullStop runs the stop function on every path.
func pullStop(seq iter.Seq2[int, int]) int {
	next, stop := iter.Pull2(seq)
	defer stop()
	k, _, ok := next()
	if !ok {
		return -1
	}
	return k
}

// unboundErrCheck tests the acquire's error result directly against
// nil, with no binding: the failure edge must still be recognized.
func unboundErrCheck(g *dep.Guard) int {
	if g.Acquire() != nil {
		return -1
	}
	defer g.Release()
	return 0
}

// crossPackage brackets the dep.Guard wrapper pair correctly.
func crossPackage(g *dep.Guard) error {
	if err := g.Acquire(); err != nil {
		return err
	}
	defer g.Release()
	if bad() {
		return errClosed
	}
	return nil
}
