// Package dep exports annotated resource wrappers, so leakcheck's
// cross-package fact flow can be exercised: callers in other fixture
// packages must bracket Acquire/Release without this package's bodies
// being visible to their analysis.
package dep

import (
	"errors"

	"gph/leak/internal/mmapio"
)

// ErrClosed reports acquisition against a closed mapping.
var ErrClosed = errors.New("dep: closed")

// Guard wraps a mapping with an error-reporting acquire.
type Guard struct {
	m *mmapio.Mapping
}

// Acquire pins the mapping for reading.
//
//gph:acquire mapping
func (g *Guard) Acquire() error {
	if !g.m.Acquire() {
		return ErrClosed
	}
	return nil
}

// Release unpins the mapping.
//
//gph:release mapping
func (g *Guard) Release() {
	g.m.Release()
}
