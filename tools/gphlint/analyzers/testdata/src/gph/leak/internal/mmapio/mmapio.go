// Package mmapio is a leakcheck fixture standing in for the real
// mapping arena: its import path ends in internal/mmapio, so the
// analyzer recognizes its Acquire/Release as the refcount primitives.
package mmapio

// Mapping is a refcounted read section over a mapped file.
type Mapping struct {
	refs   int
	closed bool
}

// Acquire enters a read section; false means the mapping is closed.
func (m *Mapping) Acquire() bool {
	if m.closed {
		return false
	}
	m.refs++
	return true
}

// Release exits a read section.
func (m *Mapping) Release() {
	m.refs--
}
