// Package a seeds leakcheck violations: acquisitions that miss their
// release on at least one path out of the function.
package a

import (
	"errors"
	"iter"
	"sync"

	"gph/leak/dep"
	"gph/leak/internal/mmapio"
)

var errClosed = errors.New("a: closed")

// buf is the pooled scratch type.
type buf struct {
	ids []int32
}

// index owns a mapping and a scratch pool.
type index struct {
	m *mmapio.Mapping
	//gph:scratch
	scratch sync.Pool
}

func bad() bool { return false }

func use(*buf) {}

func touch(*index) {}

// neverReleased leaks on every path.
func neverReleased(ix *index) {
	ix.m.Acquire() // want "mapping Acquire is not released on every path"
	touch(ix)
}

// missingReleaseOnError releases on the happy path but leaks when
// bad() sends it out the error return.
func missingReleaseOnError(ix *index) error {
	if !ix.m.Acquire() { // want "mapping Acquire may not be released on every path"
		return errClosed
	}
	if bad() {
		return errClosed // leaks the acquired mapping
	}
	ix.m.Release()
	return nil
}

// poolLeak takes scratch from the pool and returns it to the caller
// without a //gph:transfer annotation: nothing ever Puts it back.
func poolLeak(ix *index) *buf {
	s := ix.scratch.Get().(*buf) // want "pooled scratch from Get is not released on every path"
	return s
}

// getScratch is the annotated factory: handing the value out is its
// job, so it reports nothing.
//
//gph:transfer scratch
func getScratch(ix *index) *buf {
	return ix.scratch.Get().(*buf)
}

// wrapperLeak takes scratch through the annotated factory and forgets
// the Put on the early return.
func wrapperLeak(ix *index) error {
	s := getScratch(ix) // want "getScratch may not be released on every path"
	if bad() {
		return errClosed
	}
	use(s)
	ix.scratch.Put(s)
	return nil
}

// pullLeak never calls the Pull2 stop function on the no-iteration
// path.
func pullLeak(seq iter.Seq2[int, int]) int {
	next, stop := iter.Pull2(seq) // want "iter.Pull2 stop func may not be released on every path"
	k, _, ok := next()
	if !ok {
		return -1 // leaks: stop never runs
	}
	stop()
	return k
}

// crossPackageLeak brackets dep.Guard incorrectly: the annotated
// acquire is known only through the package fact.
func crossPackageLeak(g *dep.Guard) error {
	if err := g.Acquire(); err != nil { // want "Acquire may not be released on every path"
		return err
	}
	if bad() {
		return errClosed // leaks the guard
	}
	g.Release()
	return nil
}

// suppressed is the deliberate exception: held for the process
// lifetime, masked in place.
func suppressed(ix *index) {
	//gphlint:ignore leakcheck pinned for the process lifetime by design
	ix.m.Acquire()
	touch(ix)
}
