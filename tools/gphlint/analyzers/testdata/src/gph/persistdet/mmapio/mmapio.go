// Package mmapio is a persistdet fixture whose import path ends in
// mmapio: the mapped open path is persistence scope package-wide, so
// nondeterminism is flagged in any file.
package mmapio

import "time"

// Stamp records wall-clock time in a file not named persist.go; the
// package-wide scope still catches it.
func Stamp() int64 {
	return time.Now().Unix() // want "time.Now in persistence code"
}
