// Package invindex is a persistdet fixture whose import path ends in
// invindex: the whole package is persistence scope, whatever the file
// is called.
package invindex

// Walk iterates the postings map in a file not named persist.go; the
// package-wide scope still catches it.
func Walk(post map[string][]int32) int {
	n := 0
	for _, ids := range post { // want "map iteration feeds persistence"
		n += len(ids)
	}
	return n
}
