package a

import (
	"math/rand"
	"sort"
	"time"
)

// Save iterates a map straight into the output: nondeterministic.
func Save(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set { // want "map iteration feeds persistence"
		out = append(out, k)
	}
	return out
}

// SaveSorted collects then sorts before the bytes leave, which is the
// sanctioned pattern.
func SaveSorted(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Stamp leaks wall-clock time and global randomness into the
// serialized form.
func Stamp() (int64, int) {
	now := time.Now().UnixNano() // want "time.Now in persistence code"
	r := rand.Intn(10)           // want "global math/rand.Intn"
	return now, r
}

// SeededFine routes randomness through an explicitly seeded
// generator, which stays legal.
func SeededFine(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
