// Package a is the persistdet fixture: persist.go is in scope, this
// file is not.
package a

// Keys iterates a map outside persistence scope; not this analyzer's
// concern.
func Keys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}
