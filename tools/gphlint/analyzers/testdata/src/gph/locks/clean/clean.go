// Package clean uses its locks correctly: lockorder must stay silent
// on all of it.
package clean

import (
	"os"
	"sync"
)

// counter is guarded by a mutex pair with a consistent order.
type counter struct {
	mu    sync.Mutex
	rowMu sync.Mutex
	n     int
}

// store owns the writer lock.
type store struct {
	//gph:writerlock
	mu sync.Mutex
	f  *os.File
}

func maybe() bool { return false }

// deferUnlock is the canonical bracket.
func deferUnlock(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// balanced locks and unlocks by hand on each path.
func balanced(c *counter) int {
	c.mu.Lock()
	if maybe() {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// nested takes the two mutexes in the module's one order.
func nested(c *counter) {
	c.mu.Lock()
	c.rowMu.Lock()
	c.n++
	c.rowMu.Unlock()
	c.mu.Unlock()
}

// syncOutside is the group-commit shape: release the writer lock, let
// the disk catch up, retake it — the wal syncTo pattern. The unlock
// of a caller-held lock and the relock are both legal.
func syncOutside(s *store) {
	s.mu.Unlock()
	s.f.Sync()
	s.mu.Lock()
}

// deferredUnlockClosure registers the unlock inside a deferred
// closure.
func deferredUnlockClosure(c *counter) {
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
	}()
	c.n++
}
