// Package a seeds lockorder violations: imbalance, double locks, and
// the writer-lock rules.
package a

import (
	"os"
	"sync"

	"gph/leak/internal/mmapio"
)

// counter is guarded by plain mutexes.
type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// store owns the writer lock the group-commit rule protects.
type store struct {
	//gph:writerlock
	mu sync.Mutex
	f  *os.File
}

// mstore pairs the writer lock with a mapping.
type mstore struct {
	//gph:writerlock
	mu sync.Mutex
	m  *mmapio.Mapping
}

// doubleLock deadlocks immediately: sync.Mutex is not reentrant.
func doubleLock(c *counter) {
	c.mu.Lock()
	c.mu.Lock() // want "Lock of c.mu while already holding it"
	c.mu.Unlock()
}

// heldAtExit returns without unlocking.
func heldAtExit(c *counter) {
	c.mu.Lock() // want "heldAtExit returns holding c.mu"
	c.n++
}

// doubleUnlock releases a lock it already gave up.
func doubleUnlock(c *counter) {
	c.mu.Lock()
	c.mu.Unlock()
	c.mu.Unlock() // want "Unlock of c.mu which is no longer held"
}

// modeMismatch write-unlocks a read lock.
func modeMismatch(c *counter) {
	c.rw.RLock()
	c.rw.Unlock() // want "Unlock of c.rw which is read-locked"
}

// recursiveRLock can deadlock against a writer queued between the two
// RLocks.
func recursiveRLock(c *counter) {
	c.rw.RLock()
	c.rw.RLock() // want "recursive RLock of c.rw"
	c.rw.RUnlock()
}

// helperLocks takes c.mu on its own.
func helperLocks(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// selfDeadlock calls a function that locks the mutex class the caller
// already holds.
func selfDeadlock(c *counter) {
	c.mu.Lock()
	helperLocks(c) // want "call locks gph/locks/a.counter.mu which is already held"
	c.mu.Unlock()
}

// syncUnderLock fsyncs while holding the writer lock, stalling every
// writer behind a slow disk (the group-commit rule).
func syncUnderLock(s *store) {
	s.mu.Lock()
	s.f.Sync() // want "blocking fsync while holding writer lock s.mu"
	s.mu.Unlock()
}

// flush fsyncs; callers must not hold the writer lock.
func flush(s *store) {
	s.f.Sync()
}

// syncTransitive reaches the fsync through a callee: the per-function
// summary facts carry the effect.
func syncTransitive(s *store) {
	s.mu.Lock()
	flush(s) // want "blocking fsync while holding writer lock s.mu"
	s.mu.Unlock()
}

// acquireUnderLock opens a mapping read section while holding the
// writer lock: a closing mapping can block here while its readers
// wait on that same lock.
func acquireUnderLock(s *mstore) {
	s.mu.Lock()
	if s.m.Acquire() { // want "mapping read-section acquired while holding writer lock s.mu"
		s.m.Release()
	}
	s.mu.Unlock()
}

// suppressedSync is the deliberate exception, masked in place.
func suppressedSync(s *store) {
	s.mu.Lock()
	//gphlint:ignore lockorder checkpoint atomicity requires the sync inside the critical section
	s.f.Sync()
	s.mu.Unlock()
}
