// Package dep establishes one half of a lock-order cycle: it locks B
// while holding A, and exports that edge as a package fact.
package dep

import "sync"

// A and B are the module-wide mutexes the order is defined over.
var (
	A sync.Mutex
	B sync.Mutex
)

func work() {}

// AThenB locks in this package's order.
func AThenB() {
	A.Lock()
	B.Lock()
	work()
	B.Unlock()
	A.Unlock()
}
