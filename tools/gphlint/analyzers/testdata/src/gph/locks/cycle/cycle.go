// Package cycle inverts dep's lock order: dep locks B while holding
// A, this package locks A while holding B — the classic ABBA
// deadlock, visible only by combining both packages' order facts.
package cycle

import (
	"gph/locks/dep"
)

func work() {}

// BThenA inverts the order dep established.
func BThenA() {
	dep.B.Lock()
	dep.A.Lock() // want "lock order cycle"
	work()
	dep.A.Unlock()
	dep.B.Unlock()
}
