// Package a exercises the hotpath analyzer: functions annotated
// gph:hotpath and everything they call module-locally must avoid
// allocating constructs.
package a

import (
	"fmt"

	"gph/hotpath/dep"
)

// hot is an annotated root with one of each banned construct.
//
//gph:hotpath
func hot(b []byte) string {
	defer release()        // want "hot path: defer"
	m := make(map[int]int) // want "hot path: make"
	_ = m
	s := string(b) // want "conversion allocates"
	fmt.Println(s) // want "fmt.Println allocates"
	helperLocal()
	bindMethod(&counter{})
	dep.Helper() // want "call to gph/hotpath/dep.Helper reaches defer"
	return s
}

func release() {}

// helperLocal is reached from hot, so its violation is reported at
// its own site.
func helperLocal() {
	x := 0
	f := func() { x++ } // want "closure capturing enclosing variables"
	f()
}

// counter gives the method-value check something to bind.
type counter struct{ n int }

func (c *counter) inc() { c.n++ }

// bindMethod is reached from hot and binds a method value without
// calling it.
func bindMethod(c *counter) {
	f := c.inc // want "method value allocates"
	f()
}

// ok is annotated and clean: error exits go through return
// statements, methods are called directly, only slices are made.
//
//gph:hotpath
func ok(c *counter, vals []int) error {
	c.inc()
	total := 0
	for _, v := range vals {
		total += v
	}
	if total < 0 {
		return fmt.Errorf("negative total %d", total)
	}
	out := make([]int, 0, len(vals))
	_ = out
	return nil
}

// suppressed is annotated; the ignore comment silences the defer and
// keeps it out of the exported facts too.
//
//gph:hotpath
func suppressed() {
	//gphlint:ignore hotpath fixture exercises the suppression path
	defer release()
}

// coldPath is neither annotated nor reachable from a root, so its
// allocations are out of scope.
func coldPath() []string {
	m := map[string]bool{"a": true}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
