// Package dep is a fixture dependency: its helper carries a banned
// construct so the cross-package fact flow of the hotpath analyzer
// can be exercised from the fixture package that imports it.
package dep

// Helper is called from an annotated hot path in the importing
// fixture; the defer here must be reported at that call site.
func Helper() {
	defer cleanup()
}

func cleanup() {}
