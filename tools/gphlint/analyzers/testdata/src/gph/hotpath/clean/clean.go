// Package clean is a compliant hotpath fixture: the analyzer must
// stay silent on it.
package clean

// Sum is annotated and allocation-free.
//
//gph:hotpath
func Sum(vals []int) int {
	total := 0
	for _, v := range vals {
		total += v
	}
	return total
}
