// Package shard is the compliant snapshotsafety fixture: in scope by
// path, but every access follows the rules, so the analyzer must stay
// silent.
package shard

import "sync/atomic"

// state is the published snapshot.
//
//gph:snapshot
type state struct {
	ids []int32
}

// Index owns the snapshot cell.
type Index struct {
	cur atomic.Pointer[state]
}

// Len reads through Load.
func (ix *Index) Len() int {
	return len(ix.cur.Load().ids)
}

// Append publishes a fresh successor from a designated writer.
//
//gph:snapshotwriter
func (ix *Index) Append(id int32) {
	old := ix.cur.Load()
	next := &state{ids: append(append([]int32(nil), old.ids...), id)}
	ix.cur.Store(next)
}
