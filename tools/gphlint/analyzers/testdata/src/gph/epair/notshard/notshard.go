// Package notshard stores snapshots without bumping, but its import
// path is not internal/shard, so epochpair stays silent: the
// invariant is scoped to the shard layer.
package notshard

import "sync/atomic"

// state would be a snapshot in the shard layer.
//
//gph:snapshot
type state struct {
	ids []int32
}

// Index owns the cell.
type Index struct {
	cur atomic.Pointer[state]
	//gph:epoch
	epoch atomic.Uint64
}

// storeNoBump is out of scope: no diagnostic.
func storeNoBump(ix *Index, s *state) {
	ix.cur.Store(s)
}
