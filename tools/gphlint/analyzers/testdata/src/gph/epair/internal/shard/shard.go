// Package shard is an epochpair fixture: its import path ends in
// internal/shard, so the analyzer treats it as the real shard
// package.
package shard

import "sync/atomic"

// state is the published snapshot.
//
//gph:snapshot
type state struct {
	ids []int32
}

// Index owns the snapshot cell and the cache-invalidation epoch.
type Index struct {
	cur atomic.Pointer[state]
	//gph:epoch
	epoch atomic.Uint64
}

func work() {}

// goodPair stores and bumps: the canonical publication sequence.
func goodPair(ix *Index, s *state) {
	ix.cur.Store(s)
	ix.epoch.Add(1)
}

// badStore never bumps, so epoch-keyed caches keep serving the
// replaced snapshot.
func badStore(ix *Index, s *state) {
	ix.cur.Store(s) // want "snapshot Store is not post-dominated by an epoch bump"
}

// oneBranch bumps on only one path out.
func oneBranch(ix *Index, s *state, ok bool) {
	ix.cur.Store(s) // want "snapshot Store is not post-dominated by an epoch bump"
	if ok {
		ix.epoch.Add(1)
	}
}

// panicPath is clean: the non-bumping path panics, which is vacuous.
func panicPath(ix *Index, s *state, ok bool) {
	ix.cur.Store(s)
	if !ok {
		panic("invariant")
	}
	ix.epoch.Add(1)
}

// loopBump is clean: every path through the loop still reaches the
// bump.
func loopBump(ix *Index, s *state, n int) {
	ix.cur.Store(s)
	for i := 0; i < n; i++ {
		work()
	}
	ix.epoch.Add(1)
}

// returnInLoop leaks a path: the early return inside the loop exits
// without bumping.
func returnInLoop(ix *Index, s *state, n int) {
	ix.cur.Store(s) // want "snapshot Store is not post-dominated by an epoch bump"
	for i := 0; i < n; i++ {
		if i == 3 {
			return
		}
	}
	ix.epoch.Add(1)
}

// swapBad publishes via Swap with no bump.
func swapBad(ix *Index, s *state) *state {
	return ix.cur.Swap(s) // want "snapshot Swap is not post-dominated by an epoch bump"
}

// casCond is clean: publication happens only on the success branch,
// and that branch bumps.
func casCond(ix *Index, old, s *state) bool {
	if ix.cur.CompareAndSwap(old, s) {
		ix.epoch.Add(1)
		return true
	}
	return false
}

// casBad succeeds into a branch that returns without bumping.
func casBad(ix *Index, old, s *state) {
	if ix.cur.CompareAndSwap(old, s) { // want "snapshot CompareAndSwap is not post-dominated by an epoch bump"
		return
	}
	ix.epoch.Add(1) // only the failure path bumps: backwards
}

// initStore is the deliberate constructor exception: the snapshot is
// published before the index is reachable by any reader.
func initStore(s *state) *Index {
	ix := &Index{}
	//gphlint:ignore epochpair first publication before any reader can observe the index
	ix.cur.Store(s)
	return ix
}
