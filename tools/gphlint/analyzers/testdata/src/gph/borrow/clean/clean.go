// Package clean is the compliant borrowalias fixture: borrow paths
// alias, streaming paths copy, and the analyzer stays silent.
package clean

type reader struct{ src []byte }

// view returns an alias on the borrow path and copies only on the
// streaming side.
//
//gph:borrow
func (r *reader) view(n int) []byte {
	if r.src != nil {
		return r.src[:n:n]
	}
	return make([]byte, n)
}
