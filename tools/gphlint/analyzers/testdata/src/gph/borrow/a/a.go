// Package a exercises the borrowalias analyzer: functions annotated
// gph:borrow must not copy on the borrow path.
package a

// reader mimics binio's borrow-mode convention: src non-nil selects
// the borrow path.
type reader struct {
	src  []byte
	data []byte
}

func (r *reader) Borrowed() bool { return r.src != nil }

// branchTest copies inside an if r.src != nil branch: every copying
// construct on the borrow path is flagged; the streaming else-side is
// free to copy.
//
//gph:borrow
func (r *reader) branchTest(n int) []byte {
	if r.src != nil {
		out := make([]byte, n) // want "borrow path copies: make allocates a new slice"
		copy(out, r.src)       // want "borrow path copies: copy writes"
		out = append(out, 0)   // want "borrow path copies: append writes"
		_ = string(r.src[:n])  // want "borrow path copies: string<->\\[\\]byte conversion"
		return out
	}
	buf := make([]byte, n) // streaming side: copying is the point
	return buf
}

// methodTest uses the Borrowed() spelling of the borrow test, negated,
// so the else branch is borrow scope.
//
//gph:borrow
func (r *reader) methodTest(n int) []byte {
	if !r.Borrowed() {
		return make([]byte, n)
	} else {
		return append([]byte(nil), r.src[:n]...) // want "borrow path copies: append writes"
	}
}

// wholeBody has no borrow test, so the entire function is declared
// borrow path.
//
//gph:borrow
func (r *reader) wholeBody() []byte {
	return r.Clone() // want "borrow path copies: Clone duplicates the arena"
}

// suppressed shows the sanctioned escape: a justified ignore comment.
//
//gph:borrow
func (r *reader) suppressed(n int) []byte {
	if r.src != nil {
		//gphlint:ignore borrowalias unaligned fixture fallback
		out := make([]byte, n)
		return out
	}
	return nil
}

// unannotated copies freely: only gph:borrow functions are checked.
func (r *reader) unannotated(n int) []byte {
	out := make([]byte, n)
	copy(out, r.data)
	return out
}

// Clone stands in for the slices.Clone / Vector.Clone family.
func (r *reader) Clone() []byte { return r.data }
