// Package a exercises the magicreg analyzer: magics must be exactly
// eight bytes and unique module-wide.
package a

import "gph/magic/dep"

// Registration mirrors the engine registry's descriptor shape; the
// analyzer matches composite literals of any type with this name.
type Registration struct {
	Name         string
	Magic        string
	LegacyMagics []string
}

const (
	goodMagic  = "GPHAA01\n"
	shortMagic = "GPH1"      // want "is 4 bytes, want 8"
	dupMagic   = "GPHAA01\n" // want "already defined at"
	depMagic   = "GPHZZ01\n" // want "already claimed by gph/magic/dep"
)

// Reg registers fixture magics through the descriptor fields.
var Reg = Registration{
	Name:  "fixture",
	Magic: "GPHBB01\n",
	LegacyMagics: []string{
		"GPHCC01\n",
		"toolong magic", // want "is 13 bytes, want 8"
	},
}

var _ = dep.DepMagic
var _ = goodMagic
var _ = shortMagic
var _ = dupMagic
var _ = depMagic
