// Package dep defines a magic that the importing fixture package
// duplicates, exercising the cross-package fact check.
package dep

// DepMagic is this package's container magic.
const DepMagic = "GPHZZ01\n"
