// Package clean defines a single well-formed magic: the analyzer
// must stay silent.
package clean

// Magic is the container magic.
const Magic = "GPHOK01\n"

var _ = Magic
