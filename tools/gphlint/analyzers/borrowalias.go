package analyzers

import (
	"go/ast"
	"go/types"

	"gph/tools/gphlint/internal/lint"
)

// BorrowAlias checks that functions annotated //gph:borrow — the
// readers that hand out arena slices aliasing a file mapping on the
// zero-copy open path (binio's borrow mode and the section loaders
// built on it) — do not silently copy on the borrow path. O(1) open
// depends on every bulk section being returned as a view of the
// mapping; an innocent-looking make/append/copy or Clone turns that
// back into an O(size) open without failing any correctness test.
//
// The borrow path is the branch guarded by a borrow test: an if whose
// condition calls a method named Borrowed or compares a field named
// src against nil (the binio convention). Inside an annotated
// function, copying constructs — make of a slice or map, the append
// and copy builtins, calls to anything named Clone, and
// string<->[]byte conversions — are flagged when they appear on the
// borrow branch; the streaming branch copies by design and is not
// checked. An annotated function with no borrow test is checked
// whole: it is declared all-borrow (e.g. a loader that delegates mode
// selection to binio).
//
// Deliberate copies — the unaligned-source fallback that cannot alias
// — carry a //gphlint:ignore borrowalias comment, which doubles as
// the in-source record of why that copy is allowed.
var BorrowAlias = &lint.Analyzer{
	Name: "borrowalias",
	Doc:  "//gph:borrow functions alias their source on the borrow path instead of copying",
	Run:  runBorrowAlias,
}

func runBorrowAlias(pass *lint.Pass) error {
	if !pass.InModule() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !lint.HasAnnotation(fn.Doc, "gph:borrow") {
				continue
			}
			checkBorrowFn(pass, fn)
		}
	}
	return nil
}

func checkBorrowFn(pass *lint.Pass, fn *ast.FuncDecl) {
	scopes := borrowScopes(fn.Body)
	if scopes == nil {
		// No borrow test: the whole function is declared borrow path.
		scopes = []ast.Node{fn.Body}
	}
	for _, scope := range scopes {
		ast.Inspect(scope, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			reportBorrowCopy(pass, call)
			return true
		})
	}
}

// borrowScopes returns the statement blocks that run only in borrow
// mode, or nil if body contains no recognizable borrow test.
func borrowScopes(body *ast.BlockStmt) []ast.Node {
	var scopes []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		switch borrowTestPolarity(ifStmt.Cond) {
		case +1:
			scopes = append(scopes, ifStmt.Body)
			return false // the branch is fully claimed; no nested rescan
		case -1:
			if ifStmt.Else != nil {
				scopes = append(scopes, ifStmt.Else)
			}
			return false
		}
		return true
	})
	return scopes
}

// borrowTestPolarity classifies cond: +1 when its truth means borrow
// mode (x.Borrowed(), src != nil), -1 when its falsehood does
// (!x.Borrowed(), src == nil), 0 when it is not a borrow test.
func borrowTestPolarity(cond ast.Expr) int {
	switch c := ast.Unparen(cond).(type) {
	case *ast.CallExpr:
		if isBorrowedCall(c) {
			return +1
		}
	case *ast.UnaryExpr:
		if inner, ok := ast.Unparen(c.X).(*ast.CallExpr); ok && c.Op.String() == "!" && isBorrowedCall(inner) {
			return -1
		}
	case *ast.BinaryExpr:
		srcSel := isSrcSelector(c.X) || isSrcSelector(c.Y)
		nilSide := isNilIdent(c.X) || isNilIdent(c.Y)
		if srcSel && nilSide {
			switch c.Op.String() {
			case "!=":
				return +1
			case "==":
				return -1
			}
		}
	}
	return 0
}

func isBorrowedCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Borrowed"
}

func isSrcSelector(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "src"
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// reportBorrowCopy flags call if it is a copying construct.
func reportBorrowCopy(pass *lint.Pass, call *ast.CallExpr) {
	// Conversions: string([]byte) / []byte(string) copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		src := pass.TypesInfo.TypeOf(call.Args[0])
		dst := tv.Type
		if src != nil && (isString(dst) && isByteSlice(src) || isByteSlice(dst) && isString(src)) {
			pass.Reportf(call.Pos(), "borrow path copies: string<->[]byte conversion; return a view of the source instead")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				if t := pass.TypesInfo.TypeOf(call); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map:
						pass.Reportf(call.Pos(), "borrow path copies: make allocates a new %s; alias the source or justify with //gphlint:ignore", kindName(t))
					}
				}
			case "append", "copy":
				pass.Reportf(call.Pos(), "borrow path copies: %s writes into owned storage; alias the source or justify with //gphlint:ignore", id.Name)
			}
			return
		}
	}
	if callee := staticCallee(pass.TypesInfo, call); callee != nil && callee.Name() == "Clone" {
		pass.Reportf(call.Pos(), "borrow path copies: Clone duplicates the arena; alias the source or justify with //gphlint:ignore")
	}
}

// kindName names t's underlying composite kind for diagnostics.
func kindName(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}
