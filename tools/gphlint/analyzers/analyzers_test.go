package analyzers_test

import (
	"testing"

	"gph/tools/gphlint/analyzers"
	"gph/tools/gphlint/internal/testkit"
)

// Each analyzer gets a fixture package seeded with violations (the
// // want comments inside) and a compliant package the analyzer must
// stay silent on — a fixture with no want comments asserts exactly
// zero diagnostics.

func TestHotpath(t *testing.T) {
	testkit.Run(t, analyzers.Hotpath, "gph/hotpath/a")
}

func TestHotpathClean(t *testing.T) {
	testkit.Run(t, analyzers.Hotpath, "gph/hotpath/clean")
}

func TestSnapshotSafety(t *testing.T) {
	testkit.Run(t, analyzers.SnapshotSafety, "gph/snaptest/internal/shard")
}

func TestSnapshotSafetyClean(t *testing.T) {
	testkit.Run(t, analyzers.SnapshotSafety, "gph/snapclean/internal/shard")
}

func TestErrSentinel(t *testing.T) {
	testkit.Run(t, analyzers.ErrSentinel, "gph/errsent/a")
}

func TestErrSentinelClean(t *testing.T) {
	testkit.Run(t, analyzers.ErrSentinel, "gph/errsent/clean")
}

func TestPersistDet(t *testing.T) {
	testkit.Run(t, analyzers.PersistDet, "gph/persistdet/a")
}

func TestPersistDetWholePackageScope(t *testing.T) {
	testkit.Run(t, analyzers.PersistDet, "gph/persistdet/invindex")
}

func TestPersistDetMmapioScope(t *testing.T) {
	testkit.Run(t, analyzers.PersistDet, "gph/persistdet/mmapio")
}

func TestBorrowAlias(t *testing.T) {
	testkit.Run(t, analyzers.BorrowAlias, "gph/borrow/a")
}

func TestBorrowAliasClean(t *testing.T) {
	testkit.Run(t, analyzers.BorrowAlias, "gph/borrow/clean")
}

func TestMagicReg(t *testing.T) {
	testkit.Run(t, analyzers.MagicReg, "gph/magic/a")
}

func TestMagicRegClean(t *testing.T) {
	testkit.Run(t, analyzers.MagicReg, "gph/magic/clean")
}

func TestDocCheckPublicPackage(t *testing.T) {
	testkit.Run(t, analyzers.DocCheck, "gph")
}

func TestDocCheckMissingPackageComment(t *testing.T) {
	testkit.Run(t, analyzers.DocCheck, "gph/doccheck/nopkgdoc")
}

func TestDocCheckClean(t *testing.T) {
	testkit.Run(t, analyzers.DocCheck, "gph/doccheck/clean")
}

func TestLeakCheck(t *testing.T) {
	testkit.Run(t, analyzers.LeakCheck, "gph/leak/a")
}

func TestLeakCheckClean(t *testing.T) {
	testkit.Run(t, analyzers.LeakCheck, "gph/leak/clean")
}

func TestLeakCheckPrimitivePackage(t *testing.T) {
	testkit.Run(t, analyzers.LeakCheck, "gph/leak/internal/mmapio")
}

func TestLeakCheckAnnotatedWrappers(t *testing.T) {
	testkit.Run(t, analyzers.LeakCheck, "gph/leak/dep")
}

func TestEpochPair(t *testing.T) {
	testkit.Run(t, analyzers.EpochPair, "gph/epair/internal/shard")
}

func TestEpochPairOutOfScope(t *testing.T) {
	testkit.Run(t, analyzers.EpochPair, "gph/epair/notshard")
}

func TestLockOrder(t *testing.T) {
	testkit.Run(t, analyzers.LockOrder, "gph/locks/a")
}

func TestLockOrderClean(t *testing.T) {
	testkit.Run(t, analyzers.LockOrder, "gph/locks/clean")
}

func TestLockOrderCrossPackageCycle(t *testing.T) {
	testkit.Run(t, analyzers.LockOrder, "gph/locks/cycle")
}
