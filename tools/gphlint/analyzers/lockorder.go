package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gph/tools/gphlint/internal/cfg"
	"gph/tools/gphlint/internal/dataflow"
	"gph/tools/gphlint/internal/lint"
)

// LockOrder tracks sync.Mutex / sync.RWMutex usage through each
// function's CFG and composes per-function summaries into module-wide
// rules:
//
//   - lock/unlock imbalance: a path that returns holding a lock it
//     took (and did not defer-unlock), an unlock of a lock the
//     function released earlier (double unlock), and double Lock of
//     the same non-reentrant mutex;
//   - acquisition-order consistency: every "lock B while holding A"
//     pair observed anywhere in the module becomes an order edge
//     A → B, exported as a package fact; a cycle in the combined
//     edge set is a potential ABBA deadlock, reported at the local
//     edges participating in the cycle;
//   - the PR 4 group-commit rule: no fsync (or other
//     //gph:blocking call, transitively) while holding a
//     //gph:writerlock-annotated mutex — syncs belong after Unlock
//     so a slow disk cannot stall every writer;
//   - no mapping read-section Acquire (direct or transitive) while
//     holding a //gph:writerlock mutex — the mapping's refcount
//     gate may block on a closing mapping, and readers draining the
//     refcount may be waiting on that same writer lock;
//   - calling a function that (transitively) locks a mutex class
//     the caller already holds: a self-deadlock.
//
// A function that unlocks a mutex it never locked is assumed to be
// operating on its caller's lock (the wal syncTo pattern: unlock,
// fsync, relock); such borrowed locks are exempt from the exit
// balance check. States merged from branches where only one side
// holds the lock are "maybe held" and never reported — the analysis
// prefers silence to false positives.
var LockOrder = &lint.Analyzer{
	Name:      "lockorder",
	Doc:       "module-wide lock-acquisition order, lock/unlock balance, and the no-fsync/no-mapping-acquire-under-writer-lock rules",
	FactTypes: []lint.Fact{(*LockFacts)(nil)},
	Run:       runLockOrder,
}

// LockFacts is the per-package summary fact.
type LockFacts struct {
	Fns           []LockFnFact
	Orders        []LockOrderEdge
	WriterClasses []string
}

// AFact marks LockFacts as a fact type.
func (*LockFacts) AFact() {}

// LockFnFact summarizes one function's direct locking behavior; the
// transitive closure is computed on demand from the Callees lists.
type LockFnFact struct {
	QName           string
	Locks           []string // mutex classes locked anywhere in the body
	Blocks          bool     // calls fsync/a //gph:blocking function directly
	AcquiresMapping bool     // calls (*mmapio.Mapping).Acquire directly
	Callees         []string // module-internal static callees (qnames)
}

// LockOrderEdge records "To was locked while From was held" at Pos.
type LockOrderEdge struct {
	From, To string
	Pos      string // file:line, for cycle reports from other packages
}

// A heldLock is one mutex the function currently holds.
type heldLock struct {
	class    string // "pkgpath.Type.field" or "pkgpath.var"; "" if untrackable
	write    bool   // Lock rather than RLock
	maybe    bool   // held on only some joined paths
	borrowed bool   // re-acquired caller-held lock (unlock seen first)
	pos      token.Pos
}

// lockState is the per-block dataflow state, keyed by the lock's
// receiver path within the function (e.g. "s.mu").
type lockState struct {
	held     map[string]heldLock
	deferred map[string]bool // keys with a pending deferred unlock (must)
	released map[string]bool // keys locked then unlocked locally (may)
	borrowed map[string]bool // caller-held keys currently unlocked (may)
}

func newLockState() lockState {
	return lockState{
		held:     map[string]heldLock{},
		deferred: map[string]bool{},
		released: map[string]bool{},
		borrowed: map[string]bool{},
	}
}

func (s lockState) clone() lockState {
	out := newLockState()
	for k, v := range s.held {
		out.held[k] = v
	}
	for k := range s.deferred {
		out.deferred[k] = true
	}
	for k := range s.released {
		out.released[k] = true
	}
	for k := range s.borrowed {
		out.borrowed[k] = true
	}
	return out
}

var lockLattice = dataflow.Lattice[lockState]{
	Join: func(a, b lockState) lockState {
		out := newLockState()
		for k, va := range a.held {
			if vb, ok := b.held[k]; ok {
				m := va
				m.maybe = va.maybe || vb.maybe || va.write != vb.write
				m.borrowed = va.borrowed || vb.borrowed
				out.held[k] = m
			} else {
				va.maybe = true
				out.held[k] = va
			}
		}
		for k, vb := range b.held {
			if _, ok := a.held[k]; !ok {
				vb.maybe = true
				out.held[k] = vb
			}
		}
		for k := range a.deferred { // deferred unlocks must hold on every path
			if b.deferred[k] {
				out.deferred[k] = true
			}
		}
		for k := range a.released {
			out.released[k] = true
		}
		for k := range b.released {
			out.released[k] = true
		}
		for k := range a.borrowed {
			out.borrowed[k] = true
		}
		for k := range b.borrowed {
			out.borrowed[k] = true
		}
		return out
	},
	Equal: func(a, b lockState) bool {
		if len(a.held) != len(b.held) || len(a.deferred) != len(b.deferred) ||
			len(a.released) != len(b.released) || len(a.borrowed) != len(b.borrowed) {
			return false
		}
		for k, v := range a.held {
			if b.held[k] != v {
				return false
			}
		}
		for k := range a.deferred {
			if !b.deferred[k] {
				return false
			}
		}
		for k := range a.released {
			if !b.released[k] {
				return false
			}
		}
		for k := range a.borrowed {
			if !b.borrowed[k] {
				return false
			}
		}
		return true
	},
}

func runLockOrder(pass *lint.Pass) error {
	if !pass.InModule() {
		return nil
	}
	lo := &lockChecker{
		pass:          pass,
		facts:         map[string]*LockFnFact{},
		writerClasses: map[string]bool{},
		orderEdges:    map[[2]string]string{},
		effectsMemo:   map[string]*lockEffects{},
	}
	lo.collectWriterClasses()
	lo.importFacts()
	lo.collectLocalFacts()

	graphs := sharedCFGs(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lo.checkFn(graphs.decl(fn), fn.Name.Name)
			for _, lit := range funcLits(fn.Body) {
				lo.checkFn(graphs.lit(lit), fn.Name.Name+" (func literal)")
			}
		}
	}

	lo.reportOrderCycles()
	lo.exportFacts()
	return nil
}

type lockChecker struct {
	pass          *lint.Pass
	facts         map[string]*LockFnFact // qname → summary (imported + local)
	writerClasses map[string]bool        // //gph:writerlock classes, module-wide
	orderEdges    map[[2]string]string   // (from,to) → position string
	localEdges    map[[2]string]token.Pos
	importedEdges map[[2]string]string
	effectsMemo   map[string]*lockEffects
	localFns      []*LockFnFact
}

// collectWriterClasses resolves //gph:writerlock-annotated mutex
// fields and variables in the current package.
func (lo *lockChecker) collectWriterClasses() {
	for _, f := range lo.pass.Files {
		if lo.pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fl := range st.Fields.List {
				if !lint.HasAnnotation(fl.Doc, "gph:writerlock") && !lint.HasAnnotation(fl.Comment, "gph:writerlock") {
					continue
				}
				for _, name := range fl.Names {
					if obj := lo.pass.TypesInfo.Defs[name]; obj != nil {
						if cls := lo.fieldClass(obj); cls != "" {
							lo.writerClasses[cls] = true
						}
					}
				}
			}
			return true
		})
	}
}

// fieldClass derives the module-wide class of a mutex field object:
// "pkgpath.OwnerType.field" when the owner can be identified,
// "pkgpath.field" otherwise.
func (lo *lockChecker) fieldClass(obj types.Object) string {
	if obj.Pkg() == nil {
		return ""
	}
	// Find the named type owning the field by scanning package scope.
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == obj {
				return obj.Pkg().Path() + "." + tn.Name() + "." + obj.Name()
			}
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func (lo *lockChecker) importFacts() {
	lo.importedEdges = map[[2]string]string{}
	for _, pf := range lo.pass.AllPackageFacts() {
		facts, ok := pf.Fact.(*LockFacts)
		if !ok {
			continue
		}
		for i := range facts.Fns {
			fn := facts.Fns[i]
			lo.facts[fn.QName] = &fn
		}
		for _, e := range facts.Orders {
			key := [2]string{e.From, e.To}
			if _, ok := lo.importedEdges[key]; !ok {
				lo.importedEdges[key] = e.Pos
			}
		}
		for _, c := range facts.WriterClasses {
			lo.writerClasses[c] = true
		}
	}
}

// collectLocalFacts builds the direct-effect summary of every
// function declared in this package, before any CFG analysis runs, so
// intra-package calls resolve.
func (lo *lockChecker) collectLocalFacts() {
	lo.localEdges = map[[2]string]token.Pos{}
	info := lo.pass.TypesInfo
	for _, f := range lo.pass.Files {
		if lo.pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			qname := declQName(info, fn)
			if qname == "" {
				continue
			}
			fact := &LockFnFact{QName: qname}
			if lint.HasAnnotation(fn.Doc, "gph:blocking") {
				fact.Blocks = true
			}
			lockSet := map[string]bool{}
			calleeSet := map[string]bool{}
			shallowInspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if ev, ok := lo.lockEvent(call); ok {
					if (ev.kind == "Lock" || ev.kind == "RLock") && ev.class != "" {
						lockSet[ev.class] = true
					}
					return true
				}
				if lo.isBlockingCall(call) {
					fact.Blocks = true
					return true
				}
				if _, ok := mappingMethod(info, call, "Acquire"); ok {
					fact.AcquiresMapping = true
					return true
				}
				if callee := staticCallee(info, call); callee != nil {
					if path := calleePkgPath(callee); pkgPathIn(path, lo.pass.ModulePath) {
						calleeSet[funcQName(callee)] = true
					}
				}
				return true
			})
			fact.Locks = sortedKeys(lockSet)
			fact.Callees = sortedKeys(calleeSet)
			lo.facts[qname] = fact
			lo.localFns = append(lo.localFns, fact)
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// A lockEvent is one Lock/RLock/Unlock/RUnlock call on a sync mutex.
type lockEventInfo struct {
	kind  string // "Lock", "RLock", "Unlock", "RUnlock"
	key   string // receiver path within the function, e.g. "s.mu"
	class string // module-wide class, "" if untrackable (local mutex)
	rw    bool   // RWMutex rather than Mutex
}

// lockEvent classifies call as a mutex operation.
func (lo *lockChecker) lockEvent(call *ast.CallExpr) (lockEventInfo, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEventInfo{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockEventInfo{}, false
	}
	fn := staticCallee(lo.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEventInfo{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockEventInfo{}, false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return lockEventInfo{}, false
	}
	var rw bool
	switch named.Obj().Name() {
	case "Mutex":
	case "RWMutex":
		rw = true
	default:
		return lockEventInfo{}, false
	}
	ev := lockEventInfo{
		kind:  sel.Sel.Name,
		key:   types.ExprString(sel.X),
		class: lo.lockClass(sel.X),
		rw:    rw,
	}
	return ev, true
}

// lockClass maps the mutex expression to a module-wide class name.
func (lo *lockChecker) lockClass(x ast.Expr) string {
	info := lo.pass.TypesInfo
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		// s.mu → owner type + field name.
		if obj := info.Uses[x.Sel]; obj != nil && obj.Pkg() != nil {
			t := info.TypeOf(x.X)
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return obj.Pkg().Path() + "." + named.Obj().Name() + "." + obj.Name()
			}
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		// Package-level mutex variable; local mutexes have no
		// module-wide identity.
		if obj := info.Uses[x]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// isBlockingCall reports whether call performs a blocking disk sync:
// (*os.File).Sync or a syscall fsync variant.
func (lo *lockChecker) isBlockingCall(call *ast.CallExpr) bool {
	fn := staticCallee(lo.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Sync"
	case "syscall", "golang.org/x/sys/unix":
		switch fn.Name() {
		case "Fsync", "Fdatasync", "Sync":
			return true
		}
	}
	return false
}

// lockEffects is a function's transitive locking summary.
type lockEffects struct {
	locks           map[string]bool
	blocks          bool
	acquiresMapping bool
}

// transitiveEffects resolves a callee's effects through the fact
// table, memoized, with a visited guard for call-graph cycles.
func (lo *lockChecker) transitiveEffects(qname string, visiting map[string]bool) *lockEffects {
	if eff, ok := lo.effectsMemo[qname]; ok {
		return eff
	}
	if visiting[qname] {
		return &lockEffects{locks: map[string]bool{}}
	}
	fact, ok := lo.facts[qname]
	if !ok {
		return &lockEffects{locks: map[string]bool{}}
	}
	visiting[qname] = true
	eff := &lockEffects{
		locks:           map[string]bool{},
		blocks:          fact.Blocks,
		acquiresMapping: fact.AcquiresMapping,
	}
	for _, c := range fact.Locks {
		eff.locks[c] = true
	}
	for _, callee := range fact.Callees {
		sub := lo.transitiveEffects(callee, visiting)
		eff.blocks = eff.blocks || sub.blocks
		eff.acquiresMapping = eff.acquiresMapping || sub.acquiresMapping
		for c := range sub.locks {
			eff.locks[c] = true
		}
	}
	delete(visiting, qname)
	lo.effectsMemo[qname] = eff
	return eff
}

// callEffects combines a call's direct primitive effects with the
// transitive summary of its (module-internal) static callee.
func (lo *lockChecker) callEffects(call *ast.CallExpr) *lockEffects {
	info := lo.pass.TypesInfo
	eff := &lockEffects{locks: map[string]bool{}}
	if lo.isBlockingCall(call) {
		eff.blocks = true
		return eff
	}
	if _, ok := mappingMethod(info, call, "Acquire"); ok {
		eff.acquiresMapping = true
		return eff
	}
	callee := staticCallee(info, call)
	if callee == nil {
		return eff
	}
	qname := funcQName(callee)
	if _, ok := lo.facts[qname]; !ok {
		// Un-summarized (non-module or unknown) callee; the only
		// module-relevant effect is an annotation on a wrapper we
		// imported, which the fact table would carry.
		return eff
	}
	return lo.transitiveEffects(qname, map[string]bool{})
}

// checkFn runs the lock analysis over one function graph.
func (lo *lockChecker) checkFn(g *cfg.Graph, fnName string) {
	// Fast path: no mutex operation and no module-internal call worth
	// summarizing.
	hasLockOp := false
	for _, b := range g.Blocks {
		blockNodesAndCond(b, func(n ast.Node) {
			shallowInspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if _, ok := lo.lockEvent(call); ok {
						hasLockOp = true
					}
				}
				return true
			})
		})
		if hasLockOp {
			break
		}
	}
	if !hasLockOp {
		return
	}

	res := dataflow.Forward(g, newLockState(), lockLattice,
		func(b *cfg.Block, in lockState) lockState {
			st := in.clone()
			blockNodesAndCond(b, func(n ast.Node) { lo.transferNode(n, st, nil) })
			return st
		}, nil)

	// Reporting pass: replay each solved block from its fixpoint
	// in-state so diagnostics (and order edges) see accurate states
	// exactly once.
	rep := &lockReporter{lo: lo, fnName: fnName, seen: map[token.Pos]bool{}}
	for _, b := range g.Blocks {
		in, solved := res.In[b]
		if !solved {
			continue
		}
		st := in.clone()
		blockNodesAndCond(b, func(n ast.Node) { lo.transferNode(n, st, rep) })
	}

	// Balance check at the normal exit.
	if exit, ok := res.In[g.Exit]; ok {
		keys := sortedHeldKeys(exit.held)
		for _, key := range keys {
			h := exit.held[key]
			if h.maybe || h.borrowed || exit.deferred[key] {
				continue
			}
			lo.pass.Reportf(h.pos,
				"%s returns holding %s (locked here) on some path without a deferred unlock", fnName, key)
		}
	}
}

func sortedHeldKeys(m map[string]heldLock) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lockReporter dedups diagnostics across the replay pass.
type lockReporter struct {
	lo     *lockChecker
	fnName string
	seen   map[token.Pos]bool
}

func (r *lockReporter) reportf(pos token.Pos, format string, args ...any) {
	if r.seen[pos] {
		return
	}
	r.seen[pos] = true
	r.lo.pass.Reportf(pos, format, args...)
}

// transferNode applies one node's lock effects to st. rep is nil
// during fixpoint solving and non-nil during the reporting replay.
func (lo *lockChecker) transferNode(n ast.Node, st lockState, rep *lockReporter) {
	// Deferred unlocks (defer mu.Unlock(), or a deferred closure that
	// unlocks) register for the exit balance check.
	if d, ok := n.(*ast.DeferStmt); ok {
		if ev, ok := lo.lockEvent(d.Call); ok && (ev.kind == "Unlock" || ev.kind == "RUnlock") {
			st.deferred[ev.key] = true
			return
		}
	}
	deferredLits(n, func(lit *ast.FuncLit) {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if ev, ok := lo.lockEvent(call); ok && (ev.kind == "Unlock" || ev.kind == "RUnlock") {
					st.deferred[ev.key] = true
				}
			}
			return true
		})
	})

	shallowInspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if d, ok := n.(*ast.DeferStmt); ok && d.Call == call {
			return true // handled above
		}
		if ev, ok := lo.lockEvent(call); ok {
			lo.applyLockEvent(ev, call, st, rep)
			return true
		}
		lo.applyCallEffects(call, st, rep)
		return true
	})
}

func (lo *lockChecker) applyLockEvent(ev lockEventInfo, call *ast.CallExpr, st lockState, rep *lockReporter) {
	switch ev.kind {
	case "Lock", "RLock":
		if h, ok := st.held[ev.key]; ok && !h.maybe && rep != nil {
			if h.write || ev.kind == "Lock" {
				rep.reportf(call.Pos(),
					"%s of %s while already holding it (locked at %s): sync mutexes are not reentrant",
					ev.kind, ev.key, lo.pass.Fset.Position(h.pos))
			} else {
				rep.reportf(call.Pos(),
					"recursive RLock of %s (read-locked at %s) can deadlock with a writer queued in between",
					ev.key, lo.pass.Fset.Position(h.pos))
			}
		}
		if rep != nil && ev.class != "" {
			for _, other := range sortedHeldKeys(st.held) {
				h := st.held[other]
				if other == ev.key || h.class == "" || h.class == ev.class {
					continue
				}
				lo.addOrderEdge(h.class, ev.class, call.Pos())
			}
		}
		st.held[ev.key] = heldLock{
			class:    ev.class,
			write:    ev.kind == "Lock",
			borrowed: st.borrowed[ev.key],
			pos:      call.Pos(),
		}
		delete(st.borrowed, ev.key)
	case "Unlock", "RUnlock":
		h, ok := st.held[ev.key]
		if ok {
			if rep != nil && !h.maybe && h.write != (ev.kind == "Unlock") {
				rep.reportf(call.Pos(),
					"%s of %s which is %s-locked (at %s)",
					ev.kind, ev.key, lockMode(h.write), lo.pass.Fset.Position(h.pos))
			}
			delete(st.held, ev.key)
			st.released[ev.key] = true
			if h.borrowed {
				st.borrowed[ev.key] = true
				delete(st.released, ev.key)
			}
			return
		}
		if st.released[ev.key] || st.borrowed[ev.key] {
			if rep != nil {
				rep.reportf(call.Pos(), "%s of %s which is no longer held (double unlock)", ev.kind, ev.key)
			}
			return
		}
		// Never seen: assume the caller holds it (the unlock-sync-relock
		// pattern); re-locking later restores the caller's invariant.
		st.borrowed[ev.key] = true
	}
}

func lockMode(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

func (lo *lockChecker) applyCallEffects(call *ast.CallExpr, st lockState, rep *lockReporter) {
	if rep == nil || len(st.held) == 0 {
		return // effects only matter for reports and order edges
	}
	eff := lo.callEffects(call)
	if !eff.blocks && !eff.acquiresMapping && len(eff.locks) == 0 {
		return
	}
	for _, key := range sortedHeldKeys(st.held) {
		h := st.held[key]
		if h.class == "" {
			continue
		}
		if lo.writerClasses[h.class] && !h.maybe {
			if eff.blocks {
				rep.reportf(call.Pos(),
					"blocking fsync while holding writer lock %s (locked at %s): group commit requires releasing the writer lock before syncing",
					key, lo.pass.Fset.Position(h.pos))
			}
			if eff.acquiresMapping {
				rep.reportf(call.Pos(),
					"mapping read-section acquired while holding writer lock %s (locked at %s): a closing mapping can block here while readers wait on the same lock",
					key, lo.pass.Fset.Position(h.pos))
			}
		}
		if eff.locks[h.class] && !h.maybe {
			rep.reportf(call.Pos(),
				"call locks %s which is already held (at %s): possible self-deadlock",
				h.class, lo.pass.Fset.Position(h.pos))
		}
		for cls := range eff.locks {
			if cls != h.class {
				lo.addOrderEdge(h.class, cls, call.Pos())
			}
		}
	}
}

func (lo *lockChecker) addOrderEdge(from, to string, pos token.Pos) {
	key := [2]string{from, to}
	if _, ok := lo.localEdges[key]; !ok {
		lo.localEdges[key] = pos
	}
	if _, ok := lo.orderEdges[key]; !ok {
		lo.orderEdges[key] = lo.pass.Fset.Position(pos).String()
	}
}

// reportOrderCycles combines imported and local order edges and
// reports every local edge that participates in a cycle (a potential
// ABBA deadlock).
func (lo *lockChecker) reportOrderCycles() {
	succ := map[string]map[string]bool{}
	add := func(from, to string) {
		if succ[from] == nil {
			succ[from] = map[string]bool{}
		}
		succ[from][to] = true
	}
	for key := range lo.importedEdges {
		add(key[0], key[1])
	}
	for key := range lo.localEdges {
		add(key[0], key[1])
	}

	// reaches reports whether "to" is reachable from "from".
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			for next := range succ[n] {
				stack = append(stack, next)
			}
		}
		return false
	}

	keys := make([][2]string, 0, len(lo.localEdges))
	for key := range lo.localEdges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		if reaches(key[1], key[0]) {
			lo.pass.Reportf(lo.localEdges[key],
				"lock order cycle: %s is locked while holding %s, but elsewhere in the module %s is locked while (transitively) holding %s — a potential ABBA deadlock",
				key[1], key[0], key[0], key[1])
		}
	}
}

// exportFacts publishes this package's summaries, order edges and
// writer classes for downstream packages.
func (lo *lockChecker) exportFacts() {
	if len(lo.localFns) == 0 && len(lo.orderEdges) == 0 {
		return
	}
	facts := &LockFacts{}
	for _, fn := range lo.localFns {
		facts.Fns = append(facts.Fns, *fn)
	}
	sort.Slice(facts.Fns, func(i, j int) bool { return facts.Fns[i].QName < facts.Fns[j].QName })
	// Re-export imported edges so ordering facts accumulate
	// transitively across the import graph.
	for key, pos := range lo.orderEdges {
		facts.Orders = append(facts.Orders, LockOrderEdge{From: key[0], To: key[1], Pos: pos})
	}
	for key, pos := range lo.importedEdges {
		if _, ok := lo.orderEdges[key]; !ok {
			facts.Orders = append(facts.Orders, LockOrderEdge{From: key[0], To: key[1], Pos: pos})
		}
	}
	sort.Slice(facts.Orders, func(i, j int) bool {
		if facts.Orders[i].From != facts.Orders[j].From {
			return facts.Orders[i].From < facts.Orders[j].From
		}
		return facts.Orders[i].To < facts.Orders[j].To
	})
	facts.WriterClasses = sortedKeys(lo.writerClasses)
	lo.pass.ExportPackageFact(facts)
}
