package analyzers

import (
	"go/ast"
	"go/types"

	"gph/tools/gphlint/internal/lint"
)

// SnapshotSafety checks the shard package's copy-on-write discipline.
// A shard's index state is published as an immutable snapshot behind
// an atomic.Pointer; readers load it once and may then use it without
// locks, which is only sound if (a) every access to the pointer cell
// goes through its atomic methods and (b) nothing mutates a snapshot
// after publication. Within packages whose import path ends in
// internal/shard it enforces, for every struct type annotated
// //gph:snapshot:
//
//   - an atomic.Pointer[snapshot] value may only appear as the
//     receiver of an immediate Load/Store/Swap/CompareAndSwap call
//     (no copying the cell, no passing its address around);
//   - fields reachable through a snapshot value may only be assigned
//     inside functions annotated //gph:snapshotwriter — the builders
//     that assemble a fresh, not-yet-published state. Constructing a
//     snapshot with a composite literal is always allowed.
var SnapshotSafety = &lint.Analyzer{
	Name: "snapshotsafety",
	Doc:  "shard snapshots: atomic.Pointer access only via Load/Store; writes only in annotated writers",
	Run:  runSnapshotSafety,
}

// atomicPtrMethods are the accessors under which touching the pointer
// cell is sound.
var atomicPtrMethods = map[string]bool{
	"Load": true, "Store": true, "Swap": true, "CompareAndSwap": true,
}

func runSnapshotSafety(pass *lint.Pass) error {
	if !pass.InModule() {
		return nil
	}
	if !pkgPathHasSuffix(pass.Pkg.Path(), "internal/shard") {
		return nil
	}

	snapTypes := collectSnapshotTypes(pass)
	if len(snapTypes) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkAtomicCells(pass, fn, snapTypes)
			if !lint.HasAnnotation(fn.Doc, "gph:snapshotwriter") {
				checkSnapshotWrites(pass, fn, snapTypes)
			}
		}
	}
	return nil
}

// collectSnapshotTypes resolves every //gph:snapshot-annotated struct
// declaration to its named type.
func collectSnapshotTypes(pass *lint.Pass) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !lint.HasAnnotation(ts.Doc, "gph:snapshot") && !lint.HasAnnotation(gd.Doc, "gph:snapshot") {
					continue
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				if named, ok := obj.Type().(*types.Named); ok {
					out[named] = true
				}
			}
		}
	}
	return out
}

// checkAtomicCells flags every atomic.Pointer[snapshot]-typed value
// expression that is not the receiver of an immediate atomic method
// call.
func checkAtomicCells(pass *lint.Pass, fn *ast.FuncDecl, snapTypes map[*types.Named]bool) {
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[expr]
		if !ok || tv.IsType() {
			return true
		}
		if !isAtomicSnapshotPtr(tv.Type, snapTypes) {
			return true
		}
		// Walk up through parentheses to the meaningful parent.
		i := len(stack) - 2
		for i >= 0 {
			if _, paren := stack[i].(*ast.ParenExpr); !paren {
				break
			}
			i--
		}
		if i >= 1 {
			if sel, ok := stack[i].(*ast.SelectorExpr); ok && sel.X != nil && atomicPtrMethods[sel.Sel.Name] {
				if call, ok := stack[i-1].(*ast.CallExpr); ok && call.Fun == sel {
					return true // ix.shards[i].Load() and friends
				}
			}
		}
		pass.Reportf(expr.Pos(), "atomic snapshot cell used outside Load/Store/Swap/CompareAndSwap; lock-free readers require atomic access")
		return true
	})
}

// checkSnapshotWrites flags assignments (and delete calls) whose
// target is a field reached through a snapshot value, in functions not
// annotated as writers.
func checkSnapshotWrites(pass *lint.Pass, fn *ast.FuncDecl, snapTypes map[*types.Named]bool) {
	report := func(pos ast.Node) {
		pass.Reportf(pos.Pos(), "write to a snapshot field outside a //gph:snapshotwriter function; published snapshots are immutable")
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if writesThroughSnapshot(pass.TypesInfo, lhs, snapTypes) {
					report(lhs)
				}
			}
		case *ast.IncDecStmt:
			if writesThroughSnapshot(pass.TypesInfo, n.X, snapTypes) {
				report(n.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin &&
					writesThroughSnapshot(pass.TypesInfo, n.Args[0], snapTypes) {
					report(n.Args[0])
				}
			}
		}
		return true
	})
}

// writesThroughSnapshot reports whether expr denotes a location
// reached through a snapshot-typed base: st.field, st.field[i],
// (*st).field, st.inner.field, and so on.
func writesThroughSnapshot(info *types.Info, expr ast.Expr, snapTypes map[*types.Named]bool) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if isSnapshotType(info.TypeOf(e.X), snapTypes) {
				return true
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// isSnapshotType reports whether t (possibly behind a pointer) is one
// of the annotated snapshot types.
func isSnapshotType(t types.Type, snapTypes map[*types.Named]bool) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && snapTypes[named]
}

// isAtomicSnapshotPtr reports whether t is sync/atomic.Pointer[S] for
// an annotated snapshot type S.
func isAtomicSnapshotPtr(t types.Type, snapTypes map[*types.Named]bool) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync/atomic" || named.Obj().Name() != "Pointer" {
		return false
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return false
	}
	return isSnapshotType(args.At(0), snapTypes)
}
