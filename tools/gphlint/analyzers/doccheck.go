package analyzers

import (
	"go/ast"
	"path/filepath"
	"sort"

	"gph/tools/gphlint/internal/lint"
)

// DocCheck is the documentation gate, folded into the vettool from
// the old tools/doccheck command so CI runs a single analysis pass.
// Rules, unchanged from that tool:
//
//  1. Every package in the module has a package comment.
//  2. Every exported top-level identifier in the public packages (the
//     root gph package and datagen) has a doc comment; an identifier
//     inside a documented const/var/type block counts as documented,
//     and methods on unexported types are exempt.
//
// Test files never count (go vet compiles them into the unit, the
// old tool skipped them).
var DocCheck = &lint.Analyzer{
	Name: "doccheck",
	Doc:  "packages have package comments; public API symbols have doc comments",
	Run:  runDocCheck,
}

// publicPkgPaths are the packages rule 2 applies to.
var publicPkgPaths = map[string]bool{"gph": true, "gph/datagen": true}

func runDocCheck(pass *lint.Pass) error {
	if !pass.InModule() {
		return nil
	}
	var files []*ast.File
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if pass.IsTestFile(f.Pos()) || name == "_testmain.go" {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil // external test package: only _test.go files
	}
	sort.Slice(files, func(i, j int) bool {
		return pass.Fset.Position(files[i].Pos()).Filename < pass.Fset.Position(files[j].Pos()).Filename
	})

	hasPkgDoc := false
	for _, f := range files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		pass.Reportf(files[0].Name.Pos(), "package %s has no package comment", pass.Pkg.Name())
	}

	if !publicPkgPaths[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			checkDocDecl(pass, decl)
		}
	}
	return nil
}

// checkDocDecl reports exported top-level identifiers lacking docs.
func checkDocDecl(pass *lint.Pass, decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return // method on an unexported type
		}
		what := "function"
		if d.Recv != nil {
			what = "method"
		}
		pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", what, d.Name.Name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
					pass.Reportf(sp.Name.Pos(), "exported type %s has no doc comment", sp.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range sp.Names {
					if n.IsExported() && sp.Doc == nil && d.Doc == nil {
						pass.Reportf(n.Pos(), "exported value %s has no doc comment", n.Name)
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a method receiver names an exported
// type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}
