package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gph/tools/gphlint/internal/cfg"
	"gph/tools/gphlint/internal/dataflow"
	"gph/tools/gphlint/internal/lint"
)

// LeakCheck verifies the repository's bracketed resource lifetimes on
// *every* path out of a function — early returns, error branches,
// loop exits — not just the happy path:
//
//   - mmapio.Mapping.Acquire (and wrappers annotated //gph:acquire
//     mapping, like the shard's acquireMapping or the engine guard's
//     acquire) must reach Release / a //gph:release mapping wrapper;
//   - sync.Pool.Get on a //gph:scratch-annotated pool (and
//     //gph:transfer scratch wrappers like getScratch) must reach Put
//     / a //gph:release scratch wrapper;
//   - the stop function of iter.Pull / iter.Pull2 must be called.
//
// The check is a forward may-analysis over the function's CFG with
// edge refinement: a block conditioned on the acquire call itself
// ("if !m.Acquire()"), on a boolean bound from it, or on an
// "err != nil" test of its error result, propagates "held" only
// along the success edge. A deferred release releases every path
// downstream of the defer. Ownership legitimately leaves a function
// through a //gph:transfer-annotated return (the caller then owns
// it, checked at the call site via the exported fact), or by
// escaping into storage the analysis cannot track (appends, struct
// fields, captures by non-deferred closures) — escapes end tracking
// silently rather than risk false positives. Paths into panic are
// vacuous.
//
// Annotated wrappers compose across packages: each package exports
// its //gph:acquire, //gph:release and //gph:transfer functions as a
// fact, so a caller in another package brackets correctly without
// the analyzer knowing the callee's body.
var LeakCheck = &lint.Analyzer{
	Name:      "leakcheck",
	Doc:       "acquired resources (mapping refcounts, pooled scratch, iter.Pull stops) must be released on every path out of the function",
	FactTypes: []lint.Fact{(*LeakFacts)(nil)},
	Run:       runLeakCheck,
}

// LeakFacts is the per-package fact listing annotated resource
// wrappers, so acquire/release brackets compose across packages.
type LeakFacts struct {
	Fns []LeakFnEntry
}

// AFact marks LeakFacts as a fact type.
func (*LeakFacts) AFact() {}

// LeakFnEntry describes one annotated wrapper.
type LeakFnEntry struct {
	// QName is the funcQName key, e.g.
	// "gph/internal/shard.(*Index).acquireMapping".
	QName string
	// Kind is "acquire" (caller holds one instance keyed by the
	// receiver on success), "release" (caller's instance is
	// released), or "transfer" (the result value is an owned
	// resource).
	Kind string
	// Class is the resource class: "mapping", "scratch", ...
	Class string
	// Cond tells callers how acquisition success is signaled:
	// "always", "bool" (true = acquired) or "err" (nil = acquired).
	Cond string
}

// Resource-status lattice (per acquire site).
const (
	stHeld    = uint8(1) // held on every path seen so far
	stMaybe   = uint8(2) // held on some path
	stEscaped = uint8(3) // ownership left the function; stop tracking
)

// leakState maps site id → status; an absent site is not held.
type leakState map[int]uint8

func (s leakState) clone() leakState {
	out := make(leakState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

var leakLattice = dataflow.Lattice[leakState]{
	Join: func(a, b leakState) leakState {
		out := leakState{}
		for k, va := range a {
			if vb, ok := b[k]; ok {
				switch {
				case va == stEscaped || vb == stEscaped:
					out[k] = stEscaped
				case va == vb:
					out[k] = va
				default:
					out[k] = stMaybe
				}
			} else {
				if va == stEscaped {
					out[k] = stEscaped
				} else {
					out[k] = stMaybe // held on one path, absent on the other
				}
			}
		}
		for k, vb := range b {
			if _, ok := a[k]; !ok {
				if vb == stEscaped {
					out[k] = stEscaped
				} else {
					out[k] = stMaybe
				}
			}
		}
		return out
	},
	Equal: func(a, b leakState) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	},
}

// A leakSite is one acquisition in the function under analysis.
type leakSite struct {
	id    int
	call  *ast.CallExpr
	class string
	cond  string       // "always", "bool", "err"
	key   string       // receiver path for receiver-keyed resources ("" when value-carried)
	obj   types.Object // the local binding carrying a value resource (nil if none)
	what  string       // for messages: "mmapio Acquire", "scratch Get", ...
	rel   string       // suggested release call
}

func runLeakCheck(pass *lint.Pass) error {
	if !pass.InModule() {
		return nil
	}
	lc := &leakChecker{
		pass:     pass,
		wrappers: map[string]LeakFnEntry{},
		pools:    collectScratchPools(pass),
	}
	lc.collectWrappers()
	graphs := sharedCFGs(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lc.checkFn(graphs.decl(fn), fn.Doc, fn.Name.Name)
			for _, lit := range funcLits(fn.Body) {
				// Literals inherit the declaring function's
				// annotations: a //gph:transfer factory may hand the
				// resource out through the closure it returns.
				lc.checkFn(graphs.lit(lit), fn.Doc, fn.Name.Name+" (func literal)")
			}
		}
	}
	return nil
}

type leakChecker struct {
	pass     *lint.Pass
	wrappers map[string]LeakFnEntry
	pools    map[types.Object]bool
}

// collectScratchPools resolves //gph:scratch-annotated pool fields
// and package-level pool variables.
func collectScratchPools(pass *lint.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	addNames := func(names []*ast.Ident) {
		for _, name := range names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, fl := range n.Fields.List {
					if lint.HasAnnotation(fl.Doc, "gph:scratch") || lint.HasAnnotation(fl.Comment, "gph:scratch") {
						addNames(fl.Names)
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if lint.HasAnnotation(n.Doc, "gph:scratch") || lint.HasAnnotation(vs.Doc, "gph:scratch") || lint.HasAnnotation(vs.Comment, "gph:scratch") {
						addNames(vs.Names)
					}
				}
			}
			return true
		})
	}
	return out
}

// collectWrappers gathers annotated wrappers: the current package's
// (exported as a fact) and every imported package's.
func (lc *leakChecker) collectWrappers() {
	var local []LeakFnEntry
	for _, f := range lc.pass.Files {
		if lc.pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, kind := range []string{"acquire", "release", "transfer"} {
				class, ok := lint.AnnotationArg(fn.Doc, "gph:"+kind)
				if !ok || class == "" {
					continue
				}
				qname := declQName(lc.pass.TypesInfo, fn)
				if qname == "" {
					continue
				}
				local = append(local, LeakFnEntry{
					QName: qname,
					Kind:  kind,
					Class: class,
					Cond:  condOf(lc.pass.TypesInfo, fn),
				})
			}
		}
	}
	sort.Slice(local, func(i, j int) bool { return local[i].QName < local[j].QName })
	if len(local) > 0 {
		lc.pass.ExportPackageFact(&LeakFacts{Fns: local})
	}
	for _, pf := range lc.pass.AllPackageFacts() {
		if facts, ok := pf.Fact.(*LeakFacts); ok {
			for _, e := range facts.Fns {
				lc.wrappers[e.QName] = e
			}
		}
	}
	for _, e := range local {
		lc.wrappers[e.QName] = e
	}
}

// condOf derives how a wrapper signals success from its signature:
// an error result means nil-is-acquired, a single bool result means
// true-is-acquired, anything else is unconditional.
func condOf(info *types.Info, fn *ast.FuncDecl) string {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return "always"
	}
	sig := obj.Type().(*types.Signature)
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return "err"
		}
	}
	if res.Len() == 1 {
		if b, ok := res.At(0).Type().Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
			return "bool"
		}
	}
	return "always"
}

// mappingMethod reports whether call invokes the named method on
// *mmapio.Mapping, returning the receiver expression.
func mappingMethod(info *types.Info, call *ast.CallExpr, name string) (recv ast.Expr, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel || sel.Sel.Name != name {
		return nil, false
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || !pkgPathHasSuffix(fn.Pkg().Path(), "internal/mmapio") {
		return nil, false
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig || sig.Recv() == nil {
		return nil, false
	}
	t := sig.Recv().Type()
	if p, okP := t.(*types.Pointer); okP {
		t = p.Elem()
	}
	named, okN := t.(*types.Named)
	if !okN || named.Obj().Name() != "Mapping" {
		return nil, false
	}
	return sel.X, true
}

// poolCall reports whether call is pool.Get/pool.Put on an annotated
// scratch pool.
func (lc *leakChecker) poolCall(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	var obj types.Object
	switch pe := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		obj = lc.pass.TypesInfo.Uses[pe.Sel]
	case *ast.Ident:
		obj = lc.pass.TypesInfo.Uses[pe]
	}
	return obj != nil && lc.pools[obj]
}

// wrapperEntry resolves a call to an annotated wrapper entry.
func (lc *leakChecker) wrapperEntry(call *ast.CallExpr) (LeakFnEntry, bool) {
	fn := staticCallee(lc.pass.TypesInfo, call)
	if fn == nil {
		return LeakFnEntry{}, false
	}
	e, ok := lc.wrappers[funcQName(fn)]
	return e, ok
}

// checkFn runs the leak analysis over one function graph.
func (lc *leakChecker) checkFn(g *cfg.Graph, doc *ast.CommentGroup, fnName string) {
	a := &leakAnalysis{lc: lc, g: g, byCall: map[*ast.CallExpr]*leakSite{}, byObj: map[types.Object]*leakSite{}}
	a.collectSites()
	if len(a.sites) == 0 {
		return
	}
	a.collectRefinements()

	res := dataflow.Forward(g, leakState{}, leakLattice,
		func(b *cfg.Block, in leakState) leakState {
			st := in.clone()
			blockNodesAndCond(b, func(n ast.Node) { a.transferNode(n, st) })
			return st
		},
		func(e cfg.Edge, out leakState) leakState {
			refs := a.refinements[e.From]
			if len(refs) == 0 {
				return out
			}
			st := out.clone()
			for _, r := range refs {
				if e.Kind != cfg.True && e.Kind != cfg.False {
					continue
				}
				cur, held := st[r.site.id]
				if !held || cur == stEscaped {
					continue
				}
				if r.trueMeansAcquired == (e.Kind == cfg.True) {
					st[r.site.id] = stHeld
				} else {
					delete(st, r.site.id)
				}
			}
			return st
		})

	// Exemptions: a //gph:acquire or //gph:transfer function is
	// *supposed* to exit holding (or handing off) its class.
	exempt := map[string]bool{}
	for _, kind := range []string{"acquire", "transfer"} {
		if class, ok := lint.AnnotationArg(doc, "gph:"+kind); ok && class != "" {
			exempt[class] = true
		}
	}

	exitState, reached := res.In[g.Exit]
	if !reached {
		return // no normal exit (infinite loop / always panics)
	}
	ids := make([]int, 0, len(exitState))
	for id := range exitState {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		status := exitState[id]
		if status != stHeld && status != stMaybe {
			continue
		}
		site := a.sites[id]
		if exempt[site.class] {
			continue
		}
		qualifier := "is not"
		if status == stMaybe {
			qualifier = "may not be"
		}
		lc.pass.Reportf(site.call.Pos(),
			"%s %s released on every path out of %s: pair it with %s on each return (or annotate the wrapper //gph:transfer %s if the caller takes ownership)",
			site.what, qualifier, fnName, site.rel, site.class)
	}
}

// a refinement narrows a site's status along a branch.
type leakRefinement struct {
	site              *leakSite
	trueMeansAcquired bool
}

type leakAnalysis struct {
	lc          *leakChecker
	g           *cfg.Graph
	sites       []*leakSite
	byCall      map[*ast.CallExpr]*leakSite
	byObj       map[types.Object]*leakSite
	refinements map[*cfg.Block][]leakRefinement
}

// collectSites finds every acquisition in the graph and its value
// binding.
func (a *leakAnalysis) collectSites() {
	for _, b := range a.g.Blocks {
		blockNodesAndCond(b, func(n ast.Node) {
			shallowInspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				a.siteForCall(call)
				return true
			})
			a.bindSites(n)
		})
	}
}

// siteForCall classifies call as an acquisition and registers a site.
func (a *leakAnalysis) siteForCall(call *ast.CallExpr) {
	if _, ok := a.byCall[call]; ok {
		return
	}
	lc := a.lc
	var site *leakSite
	if recv, ok := mappingMethod(lc.pass.TypesInfo, call, "Acquire"); ok {
		site = &leakSite{class: "mapping", cond: "bool", key: types.ExprString(recv),
			what: "mapping Acquire", rel: "Release"}
	} else if lc.poolCall(call, "Get") {
		site = &leakSite{class: "scratch", cond: "always",
			what: "pooled scratch from Get", rel: "Put"}
	} else if name := callFullName(lc.pass.TypesInfo, call); name == "iter.Pull" || name == "iter.Pull2" {
		site = &leakSite{class: "pull", cond: "always",
			what: name + " stop func", rel: "a stop() call"}
	} else if e, ok := lc.wrapperEntry(call); ok && (e.Kind == "acquire" || e.Kind == "transfer") {
		what := shortQName(e.QName)
		rel := "the matching //gph:release " + e.Class + " call"
		site = &leakSite{class: e.Class, cond: e.Cond, what: what, rel: rel}
		if e.Kind == "acquire" {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				site.key = types.ExprString(sel.X)
			}
		}
	}
	if site == nil {
		return
	}
	site.id = len(a.sites)
	site.call = call
	a.sites = append(a.sites, site)
	a.byCall[call] = site
}

// bindSites associates value-carried sites with the variables their
// results land in (s := ix.getScratch(); next, stop := iter.Pull2(...)).
func (a *leakAnalysis) bindSites(n ast.Node) {
	var lhs []ast.Expr
	var rhs []ast.Expr
	switch n := n.(type) {
	case *ast.AssignStmt:
		lhs, rhs = n.Lhs, n.Rhs
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
				for _, name := range vs.Names {
					lhs = append(lhs, name)
				}
				rhs = vs.Values
			}
		}
	default:
		return
	}
	if len(rhs) == 0 {
		return
	}
	bind := func(site *leakSite, idx int) {
		if site == nil || idx >= len(lhs) {
			return
		}
		id, ok := ast.Unparen(lhs[idx]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := a.lc.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = a.lc.pass.TypesInfo.Uses[id]
		}
		if obj != nil && site.obj == nil {
			site.obj = obj
			a.byObj[obj] = site
		}
	}
	if len(rhs) == 1 {
		call := callIn(rhs[0])
		site := a.byCall[call]
		if site == nil {
			return
		}
		switch site.class {
		case "pull":
			bind(site, 1) // next, stop := iter.Pull2(...)
		default:
			if site.key == "" { // value-carried
				bind(site, 0)
			}
		}
		return
	}
	for i, r := range rhs {
		if site := a.byCall[callIn(r)]; site != nil && site.key == "" && site.class != "pull" {
			bind(site, i)
		}
	}
}

// callIn unwraps parens and type assertions around a call expression
// (pool.Get().(*T) binds the Get).
func callIn(e ast.Expr) *ast.CallExpr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return x
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// collectRefinements finds blocks whose condition reveals whether an
// acquisition succeeded.
func (a *leakAnalysis) collectRefinements() {
	a.refinements = map[*cfg.Block][]leakRefinement{}
	info := a.lc.pass.TypesInfo
	for _, b := range a.g.Blocks {
		if b.Cond == nil {
			continue
		}
		cond := ast.Unparen(b.Cond)
		switch x := cond.(type) {
		case *ast.CallExpr:
			// if m.Acquire() { ... }  (negation is normalized away)
			if site := a.byCall[x]; site != nil && site.cond == "bool" {
				a.refinements[b] = append(a.refinements[b], leakRefinement{site, true})
			}
		case *ast.Ident:
			// ok := m.Acquire(); if ok { ... }
			obj := info.Uses[x]
			if obj == nil {
				break
			}
			if site := a.lastDefFrom(b, obj, "bool"); site != nil {
				a.refinements[b] = append(a.refinements[b], leakRefinement{site, true})
			}
		case *ast.BinaryExpr:
			// if err := s.acquireMapping(); err != nil { ... }
			if x.Op != token.EQL && x.Op != token.NEQ {
				break
			}
			var errExpr ast.Expr
			if isNilIdent(x.Y) {
				errExpr = x.X
			} else if isNilIdent(x.X) {
				errExpr = x.Y
			}
			if errExpr == nil {
				break
			}
			// if o.acquire() != nil { ... } — the acquire call compared
			// against nil directly, no error binding.
			if site := a.byCall[callIn(errExpr)]; site != nil && site.cond == "err" {
				a.refinements[b] = append(a.refinements[b], leakRefinement{site, x.Op == token.EQL})
				break
			}
			id, ok := ast.Unparen(errExpr).(*ast.Ident)
			if !ok {
				break
			}
			obj := info.Uses[id]
			if obj == nil || !isErrorType(obj.Type()) {
				break
			}
			site := a.lastDefFrom(b, obj, "err")
			if site == nil {
				break
			}
			// err == nil: True edge means acquired;
			// err != nil: True edge means failed.
			a.refinements[b] = append(a.refinements[b], leakRefinement{site, x.Op == token.EQL})
		}
	}
}

// lastDefFrom scans b's nodes backward for the last assignment of obj
// and returns the site whose call (with matching success condition)
// produced it.
func (a *leakAnalysis) lastDefFrom(b *cfg.Block, obj types.Object, cond string) *leakSite {
	info := a.lc.pass.TypesInfo
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		as, ok := b.Nodes[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		assigns := false
		for _, l := range as.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				o := info.Defs[id]
				if o == nil {
					o = info.Uses[id]
				}
				if o == obj {
					assigns = true
				}
			}
		}
		if !assigns {
			continue
		}
		for _, r := range as.Rhs {
			if site := a.byCall[callIn(r)]; site != nil && site.cond == cond {
				return site
			}
		}
		return nil // assigned from something else: no refinement
	}
	return nil
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// transferNode applies one node's effects to st, in evaluation-ish
// order: releases, then acquisitions, then escapes.
func (a *leakAnalysis) transferNode(n ast.Node, st leakState) {
	consumed := map[*ast.Ident]bool{}
	a.applyReleases(n, st, consumed)
	a.applyAcquires(n, st)
	a.applyEscapes(n, st, consumed)
}

// applyReleases clears sites released by n (including releases inside
// a deferred closure — all returns run registered defers, so an
// immediate release is sound for the pairing property).
func (a *leakAnalysis) applyReleases(n ast.Node, st leakState, consumed map[*ast.Ident]bool) {
	lc := a.lc
	info := lc.pass.TypesInfo
	handleCall := func(call *ast.CallExpr) {
		if recv, ok := mappingMethod(info, call, "Release"); ok {
			a.releaseKeyed(st, "mapping", types.ExprString(recv))
			return
		}
		if lc.poolCall(call, "Put") {
			if len(call.Args) == 1 {
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if site := a.byObj[info.Uses[id]]; site != nil {
						consumed[id] = true
						delete(st, site.id)
						return
					}
				}
			}
			a.releaseClass(st, "scratch")
			return
		}
		// stop() of a tracked iter.Pull binding.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if site := a.byObj[info.Uses[id]]; site != nil && site.class == "pull" {
				consumed[id] = true
				delete(st, site.id)
				return
			}
		}
		if e, ok := lc.wrapperEntry(call); ok && e.Kind == "release" {
			// Prefer a tracked value argument, then the receiver key,
			// then the class fallback.
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if site := a.byObj[info.Uses[id]]; site != nil && site.class == e.Class {
						consumed[id] = true
						delete(st, site.id)
						return
					}
				}
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if a.releaseKeyed(st, e.Class, types.ExprString(sel.X)) {
					return
				}
			}
			a.releaseClass(st, e.Class)
		}
	}
	shallowInspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			handleCall(call)
		}
		return true
	})
	// Releases inside deferred closures: defer func() { ... }().
	deferredLits(n, func(lit *ast.FuncLit) {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				handleCall(call)
				// Mark the closure's tracked idents consumed so the
				// capture is not treated as an escape.
				for _, arg := range call.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok && a.byObj[info.Uses[id]] != nil {
						consumed[id] = true
					}
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && a.byObj[info.Uses[id]] != nil {
					consumed[id] = true
				}
			}
			return true
		})
	})
}

// releaseKeyed releases held sites of class with a matching receiver
// path, reporting whether any matched.
func (a *leakAnalysis) releaseKeyed(st leakState, class, key string) bool {
	matched := false
	for id, status := range st {
		site := a.sites[id]
		if site.class == class && site.key == key && status != stEscaped {
			delete(st, id)
			matched = true
		}
	}
	if !matched {
		return a.releaseClass(st, class)
	}
	return true
}

// releaseClass releases the single held site of class, if exactly one
// is held (the conservative fallback when keys don't line up).
func (a *leakAnalysis) releaseClass(st leakState, class string) bool {
	var found []int
	for id, status := range st {
		if a.sites[id].class == class && status != stEscaped {
			found = append(found, id)
		}
	}
	if len(found) == 1 {
		delete(st, found[0])
		return true
	}
	return false
}

// applyAcquires marks sites acquired by n as held.
func (a *leakAnalysis) applyAcquires(n ast.Node, st leakState) {
	shallowInspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if site := a.byCall[call]; site != nil {
				if st[site.id] != stEscaped {
					st[site.id] = stHeld
				}
			}
		}
		return true
	})
}

// applyEscapes ends tracking for value resources whose ownership
// leaves the analysis' sight: stored, appended, captured or passed
// outside the module.
func (a *leakAnalysis) applyEscapes(n ast.Node, st leakState, consumed map[*ast.Ident]bool) {
	info := a.lc.pass.TypesInfo
	// Captures by non-deferred closures escape wholesale.
	deferred := map[*ast.FuncLit]bool{}
	deferredLits(n, func(lit *ast.FuncLit) { deferred[lit] = true })
	mark := func(site *leakSite) {
		if st[site.id] == stHeld || st[site.id] == stMaybe {
			st[site.id] = stEscaped
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && !deferred[lit] {
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok && !consumed[id] {
					if site := a.byObj[info.Uses[id]]; site != nil {
						mark(site)
					}
				}
				return true
			})
			return false
		}
		return true
	})
	a.walkEscapes(n, st, consumed, mark)
}

// walkEscapes classifies direct (non-closure) uses of tracked idents.
func (a *leakAnalysis) walkEscapes(n ast.Node, st leakState, consumed map[*ast.Ident]bool, mark func(*leakSite)) {
	info := a.lc.pass.TypesInfo
	module := a.lc.pass.ModulePath
	var walk func(node ast.Node, escCtx bool) // escCtx: idents seen here escape
	classifyCall := func(call *ast.CallExpr) bool {
		// Reports whether plain ident arguments of this call escape.
		if fn := staticCallee(info, call); fn != nil {
			path := calleePkgPath(fn)
			if path == module || pkgPathIn(path, module) {
				return false // module-local callee: assumed not to retain
			}
			return true // non-module callee may retain the argument
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "append":
					return true
				default:
					return false // len, cap, ...
				}
			}
			// A call through a local function value (including a
			// tracked stop()): not an escape of its arguments.
			return false
		}
		return true
	}
	walk = func(node ast.Node, escCtx bool) {
		switch x := node.(type) {
		case nil:
			return
		case *ast.Ident:
			if consumed[x] {
				return
			}
			if site := a.byObj[info.Uses[x]]; site != nil && escCtx {
				mark(site)
			}
		case *ast.FuncLit:
			return // handled by the capture scan
		case *ast.SelectorExpr:
			walk(x.X, false) // field/method access is benign
		case *ast.CallExpr:
			walk(x.Fun, false)
			esc := classifyCall(x)
			for _, arg := range x.Args {
				walk(arg, esc)
			}
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				walk(l, false)
			}
			for _, r := range x.Rhs {
				// Aliasing into another variable or storage escapes
				// unless the RHS is the site's own defining call.
				if id, ok := ast.Unparen(r).(*ast.Ident); ok {
					walk(id, true)
					continue
				}
				walk(r, false)
			}
		case *ast.UnaryExpr:
			walk(x.X, escCtx || x.Op == token.AND)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				walk(el, true)
			}
		case *ast.KeyValueExpr:
			walk(x.Key, true)
			walk(x.Value, true)
		case *ast.SendStmt:
			walk(x.Chan, false)
			walk(x.Value, true)
		case *ast.ReturnStmt:
			// Returning is handled by the exit check plus the
			// //gph:transfer exemption; not an escape here.
			for _, r := range x.Results {
				walk(r, false)
			}
		default:
			for _, child := range childNodes(node) {
				walk(child, escCtx)
			}
		}
	}
	walk(n, false)
}

// childNodes lists a node's immediate children (generic fallback for
// walkEscapes).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if first {
			first = false
			return true
		}
		out = append(out, m)
		return false
	})
	return out
}

// deferredLits calls f for every closure that is the function of a
// defer statement within n.
func deferredLits(n ast.Node, f func(*ast.FuncLit)) {
	shallowInspect(n, func(m ast.Node) bool {
		if d, ok := m.(*ast.DeferStmt); ok {
			if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				f(lit)
			}
		}
		return true
	})
}

// pkgPathIn reports whether path is module itself or a package inside
// it.
func pkgPathIn(path, module string) bool {
	return path == module || (len(path) > len(module) && path[:len(module)] == module && path[len(module)] == '/')
}

// shortQName trims the package path off a qualified name for
// messages: "gph/internal/shard.(*Index).acquireMapping" →
// "(*Index).acquireMapping".
func shortQName(q string) string {
	if i := lastSlash(q); i >= 0 {
		q = q[i+1:]
	}
	if i := indexByte(q, '.'); i >= 0 {
		return q[i+1:]
	}
	return q
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
