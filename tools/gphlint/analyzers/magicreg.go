package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"gph/tools/gphlint/internal/lint"
)

// MagicsFact is the package fact magicreg exports: every persistence
// magic literal the package defines, so downstream packages can
// check module-wide uniqueness.
type MagicsFact struct {
	// Magics lists the package's magic definitions in source order.
	Magics []MagicDef
}

// AFact marks MagicsFact as a lint fact.
func (*MagicsFact) AFact() {}

// MagicDef is one magic literal definition site.
type MagicDef struct {
	// Value is the decoded string value.
	Value string
	// Pos is the definition position, "file:line" with the file
	// base name.
	Pos string
}

// MagicReg checks persistence magic literals: every magic must be
// exactly engine.MagicLen (8) bytes, and no two definition sites in
// the module may claim the same value — the registry's byte-dispatch
// (engine.LoadAny) and the WAL/shard container formats all depend on
// magics being unambiguous. Definitions are found in constants and
// variables whose name contains "magic" and in string literals given
// for the Magic/LegacyMagics fields of engine.Registration literals.
// Cross-package duplicates are detected through package facts: a
// collision is reported by the first analyzed package whose import
// closure contains both sites.
var MagicReg = &lint.Analyzer{
	Name:      "magicreg",
	Doc:       "persistence magics are 8 bytes and unique module-wide",
	FactTypes: []lint.Fact{(*MagicsFact)(nil)},
	Run:       runMagicReg,
}

// magicLen mirrors engine.MagicLen; the analyzer cannot import the
// engine package (it must also check fixture code that does not).
const magicLen = 8

func runMagicReg(pass *lint.Pass) error {
	if !pass.InModule() {
		return nil
	}
	type localDef struct {
		MagicDef
		pos token.Pos
	}
	var defs []localDef
	add := func(lit *ast.BasicLit) {
		if lit.Kind != token.STRING {
			return
		}
		val, err := strconv.Unquote(lit.Value)
		if err != nil {
			return
		}
		p := pass.Fset.Position(lit.Pos())
		defs = append(defs, localDef{MagicDef{Value: val, Pos: shortPos(p.Filename, p.Line)}, lit.Pos()})
	}

	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if !strings.Contains(strings.ToLower(name.Name), "magic") || i >= len(n.Values) {
						continue
					}
					if lit, ok := n.Values[i].(*ast.BasicLit); ok {
						add(lit)
					}
				}
			case *ast.CompositeLit:
				if !isRegistrationLit(pass, n) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch key.Name {
					case "Magic":
						if lit, ok := kv.Value.(*ast.BasicLit); ok {
							add(lit)
						}
					case "LegacyMagics":
						if list, ok := kv.Value.(*ast.CompositeLit); ok {
							for _, e := range list.Elts {
								if lit, ok := e.(*ast.BasicLit); ok {
									add(lit)
								}
							}
						}
					}
				}
			}
			return true
		})
	}

	// Rule 1: exactly magicLen bytes.
	for _, d := range defs {
		if len(d.Value) != magicLen {
			pass.Reportf(d.pos, "magic %q is %d bytes, want %d", d.Value, len(d.Value), magicLen)
		}
	}

	// Rule 2: unique within the package.
	firstByValue := map[string]localDef{}
	for _, d := range defs {
		if prev, dup := firstByValue[d.Value]; dup {
			pass.Reportf(d.pos, "magic %q already defined at %s", d.Value, prev.Pos)
			continue
		}
		firstByValue[d.Value] = d
	}

	// Rule 3: unique across the import closure.
	imported := map[string][]string{} // value → "pkg (pos)" sites
	for _, pf := range pass.AllPackageFacts() {
		mf, ok := pf.Fact.(*MagicsFact)
		if !ok || pf.Path == pass.Pkg.Path() {
			continue
		}
		for _, m := range mf.Magics {
			imported[m.Value] = append(imported[m.Value], fmt.Sprintf("%s (%s)", pf.Path, m.Pos))
		}
	}
	for _, d := range defs {
		if prev, dup := firstByValue[d.Value]; dup && prev.pos != d.pos {
			continue // already reported as an in-package duplicate
		}
		if sites := imported[d.Value]; len(sites) > 0 {
			sort.Strings(sites)
			pass.Reportf(d.pos, "magic %q already claimed by %s", d.Value, strings.Join(sites, ", "))
		}
	}

	// Export the fact, deduplicated (a constant referenced by a
	// Registration literal defines one magic, not two).
	fact := &MagicsFact{}
	for _, d := range defs {
		if firstByValue[d.Value].pos == d.pos {
			fact.Magics = append(fact.Magics, d.MagicDef)
		}
	}
	if len(fact.Magics) > 0 {
		pass.ExportPackageFact(fact)
	}
	return nil
}

// isRegistrationLit reports whether the composite literal has a named
// type called Registration (the engine registry's descriptor; the
// name match keeps fixtures importable without the real package).
func isRegistrationLit(pass *lint.Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	name := tv.Type.String()
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name == "Registration"
}

// shortPos renders a stable "file:line" with the path's base name
// (full build paths would differ between CI and local runs).
func shortPos(filename string, line int) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		filename = filename[i+1:]
	}
	return fmt.Sprintf("%s:%d", filename, line)
}
