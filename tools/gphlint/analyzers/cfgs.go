package analyzers

import (
	"go/ast"

	"gph/tools/gphlint/internal/cfg"
	"gph/tools/gphlint/internal/lint"
)

// funcGraphs lazily builds and memoizes control-flow graphs for the
// unit's functions. One instance is shared across every CFG-based
// analyzer of a pass through lint.Pass.Shared, so leakcheck,
// epochpair and lockorder pay for graph construction once per
// function, not once per analyzer.
type funcGraphs struct {
	pass  *lint.Pass
	decls map[*ast.FuncDecl]*cfg.Graph
	lits  map[*ast.FuncLit]*cfg.Graph
}

// sharedCFGs returns the unit's graph cache.
func sharedCFGs(pass *lint.Pass) *funcGraphs {
	return pass.Shared("cfg", func() any {
		return &funcGraphs{
			pass:  pass,
			decls: map[*ast.FuncDecl]*cfg.Graph{},
			lits:  map[*ast.FuncLit]*cfg.Graph{},
		}
	}).(*funcGraphs)
}

func (fg *funcGraphs) decl(fn *ast.FuncDecl) *cfg.Graph {
	if g, ok := fg.decls[fn]; ok {
		return g
	}
	g := cfg.New(fn, fg.pass.TypesInfo)
	fg.decls[fn] = g
	return g
}

func (fg *funcGraphs) lit(fn *ast.FuncLit) *cfg.Graph {
	if g, ok := fg.lits[fn]; ok {
		return g
	}
	g := cfg.New(fn, fg.pass.TypesInfo)
	fg.lits[fn] = g
	return g
}

// funcLits collects every function literal nested anywhere inside
// root, in source order. The CFG builder treats literals as opaque,
// so analyzers that care about closure bodies (a deferred cleanup, a
// goroutine worker) analyze each literal as its own graph.
func funcLits(root ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
		}
		return true
	})
	return out
}

// shallowInspect visits root's nodes without descending into nested
// function literals — the node-level view matching the CFG's opaque
// treatment of closures.
func shallowInspect(root ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return visit(n)
	})
}

// blockNodesAndCond runs visit over a block's nodes and then its
// condition (the evaluation order the CFG defines).
func blockNodesAndCond(b *cfg.Block, visit func(ast.Node)) {
	for _, n := range b.Nodes {
		visit(n)
	}
	if b.Cond != nil {
		visit(b.Cond)
	}
}
