package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"gph/tools/gphlint/internal/cfg"
)

func build(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return cfg.New(fn, nil)
		}
	}
	t.Fatal("no function")
	return nil
}

// calls collects the called identifier names in a node.
func calls(n ast.Node) []string {
	var out []string
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				out = append(out, id.Name)
			}
		}
		return true
	})
	return out
}

func blockCalls(b *cfg.Block) []string {
	var out []string
	for _, n := range b.Nodes {
		out = append(out, calls(n)...)
	}
	if b.Cond != nil {
		out = append(out, calls(b.Cond)...)
	}
	return out
}

// set is the may-analysis state: the names seen on some path.
type set map[string]bool

func (s set) with(names ...string) set {
	out := set{}
	for k := range s {
		out[k] = true
	}
	for _, n := range names {
		out[n] = true
	}
	return out
}

var setLattice = Lattice[set]{
	Join: func(a, b set) set {
		out := set{}
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	},
	Equal: func(a, b set) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	},
}

func TestForwardJoinsBranches(t *testing.T) {
	g := build(t, `if c() { a() } else { b() }`)
	res := Forward(g, set{}, setLattice, func(b *cfg.Block, in set) set {
		return in.with(blockCalls(b)...)
	}, nil)
	exit, ok := res.In[g.Exit]
	if !ok {
		t.Fatal("exit not reached")
	}
	for _, want := range []string{"a", "b", "c"} {
		if !exit[want] {
			t.Errorf("exit state missing %q: %v", want, exit)
		}
	}
}

func TestForwardEdgeRefinement(t *testing.T) {
	g := build(t, `if ok() { a() } else { b() }`)
	res := Forward(g, set{}, setLattice, func(b *cfg.Block, in set) set {
		return in.with(blockCalls(b)...)
	}, func(e cfg.Edge, out set) set {
		switch e.Kind {
		case cfg.True:
			return out.with("TAKEN")
		case cfg.False:
			return out.with("NOTTAKEN")
		}
		return out
	})
	var aBlock, bBlock *cfg.Block
	for _, blk := range g.Blocks {
		for _, name := range blockCalls(blk) {
			switch name {
			case "a":
				aBlock = blk
			case "b":
				bBlock = blk
			}
		}
	}
	if in := res.In[aBlock]; !in["TAKEN"] || in["NOTTAKEN"] {
		t.Errorf("true-branch state wrong: %v", in)
	}
	if in := res.In[bBlock]; !in["NOTTAKEN"] || in["TAKEN"] {
		t.Errorf("false-branch state wrong: %v", in)
	}
	// Past the join both labels are possible.
	if exit := res.In[g.Exit]; !exit["TAKEN"] || !exit["NOTTAKEN"] {
		t.Errorf("join state wrong: %v", exit)
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	g := build(t, `for i := 0; i < n; i++ { if c() { a() } }; b()`)
	res := Forward(g, set{}, setLattice, func(b *cfg.Block, in set) set {
		return in.with(blockCalls(b)...)
	}, nil)
	exit := res.In[g.Exit]
	if !exit["a"] || !exit["b"] {
		t.Errorf("loop body effect lost at exit: %v", exit)
	}
}

// boolLattice is the must-analysis lattice: true = property holds on
// every path.
var boolLattice = Lattice[bool]{
	Join:  func(a, b bool) bool { return a && b },
	Equal: func(a, b bool) bool { return a == b },
}

// mustReachBump solves "every path from here calls bump() before the
// normal exit" and returns the state at function entry.
func mustReachBump(t *testing.T, body string) bool {
	g := build(t, body)
	res := Backward(g, func(b *cfg.Block) bool {
		return b == g.PanicExit // vacuous on panic paths, false at Exit
	}, boolLattice, func(b *cfg.Block, out bool) bool {
		for _, name := range blockCalls(b) {
			if name == "bump" {
				return true
			}
		}
		return out
	}, nil)
	in, ok := res.In[g.Entry]
	if !ok {
		t.Fatal("entry not solved")
	}
	return in
}

func TestBackwardMustAllPaths(t *testing.T) {
	if !mustReachBump(t, `if c() { bump(); return }; bump()`) {
		t.Error("bump on every path should solve true")
	}
	if mustReachBump(t, `if c() { return }; bump()`) {
		t.Error("early return skipping bump should solve false")
	}
	if !mustReachBump(t, `if c() { panic("x") }; bump()`) {
		t.Error("panic paths are vacuous; remaining path bumps")
	}
	if !mustReachBump(t, `for i := 0; i < n; i++ { work() }; bump()`) {
		t.Error("loop then bump should solve true across the back edge")
	}
	if mustReachBump(t, `for i := 0; i < n; i++ { if c() { return } }; bump()`) {
		t.Error("return from inside the loop skips bump")
	}
}
