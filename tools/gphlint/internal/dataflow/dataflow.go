// Package dataflow is a generic worklist solver over lint/cfg graphs.
// An analysis supplies a join-semilattice of states and a per-block
// transfer function; the solver iterates to a fixed point in either
// direction. The same machinery serves may-analyses (leakcheck's
// "held on some path", lockorder's held-lock sets — join keeps the
// pessimistic union) and must-analyses (epochpair's "every path
// reaches an epoch bump" — join is logical AND): the distinction
// lives entirely in the supplied Join.
//
// Unreached blocks (dead code after return) are simply absent from
// the Result maps; analyzers skip them. The optional EdgeTransfer
// hook refines state along individual edges, which is how analyzers
// become path-sensitive: a block conditioned on "m.Acquire()"
// propagates "held" along its True edge and "not held" along its
// False edge.
package dataflow

import "gph/tools/gphlint/internal/cfg"

// A Lattice describes the state domain of one analysis.
type Lattice[T any] struct {
	// Join combines the states of two merging paths. It must be
	// commutative, associative and idempotent or the solver may not
	// terminate.
	Join func(T, T) T
	// Equal reports whether two states are indistinguishable; the
	// solver stops revisiting a block once its output stabilizes.
	Equal func(T, T) bool
}

// A Transfer maps a block's input state to its output state. It must
// not mutate its input: states are shared across edges.
type Transfer[T any] func(b *cfg.Block, state T) T

// An EdgeTransfer refines the state flowing along one edge (identity
// when nil).
type EdgeTransfer[T any] func(e cfg.Edge, state T) T

// A Result holds the fixed-point states. For a forward analysis In
// is the state on block entry and Out on block exit; a backward
// analysis mirrors this (In is the state *before* the block runs,
// i.e. the solved value, and Out the state after it, joined from
// successors). Blocks unreachable from the analysis boundary have no
// entry.
type Result[T any] struct {
	In  map[*cfg.Block]T
	Out map[*cfg.Block]T
}

// Forward solves a forward problem from g.Entry with the given entry
// state.
func Forward[T any](g *cfg.Graph, entry T, lat Lattice[T], transfer Transfer[T], edge EdgeTransfer[T]) Result[T] {
	res := Result[T]{In: map[*cfg.Block]T{}, Out: map[*cfg.Block]T{}}
	inQueue := map[*cfg.Block]bool{g.Entry: true}
	queue := []*cfg.Block{g.Entry}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false

		in, seeded := entryState(b == g.Entry, entry)
		for _, e := range b.Preds {
			out, ok := res.Out[e.From]
			if !ok {
				continue // predecessor not yet reached: optimistic skip
			}
			if edge != nil {
				out = edge(e, out)
			}
			in, seeded = joinInto(lat, in, seeded, out)
		}
		if !seeded {
			continue // unreachable via processed edges
		}
		res.In[b] = in
		out := transfer(b, in)
		if old, ok := res.Out[b]; ok && lat.Equal(old, out) {
			continue
		}
		res.Out[b] = out
		for _, e := range b.Succs {
			if !inQueue[e.To] {
				inQueue[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return res
}

// Backward solves a backward problem. boundary supplies the state at
// graph exits (blocks with no successors — Exit and PanicExit);
// transfer maps a block's *output* state to its *input* state.
func Backward[T any](g *cfg.Graph, boundary func(b *cfg.Block) T, lat Lattice[T], transfer Transfer[T], edge EdgeTransfer[T]) Result[T] {
	res := Result[T]{In: map[*cfg.Block]T{}, Out: map[*cfg.Block]T{}}
	inQueue := map[*cfg.Block]bool{}
	var queue []*cfg.Block
	for _, b := range g.Blocks {
		if len(b.Succs) == 0 {
			inQueue[b] = true
			queue = append(queue, b)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false

		var out T
		seeded := false
		if len(b.Succs) == 0 {
			out, seeded = boundary(b), true
		}
		for _, e := range b.Succs {
			in, ok := res.In[e.To]
			if !ok {
				continue
			}
			if edge != nil {
				in = edge(e, in)
			}
			out, seeded = joinInto(lat, out, seeded, in)
		}
		if !seeded {
			continue
		}
		res.Out[b] = out
		in := transfer(b, out)
		if old, ok := res.In[b]; ok && lat.Equal(old, in) {
			continue
		}
		res.In[b] = in
		for _, e := range b.Preds {
			if !inQueue[e.From] {
				inQueue[e.From] = true
				queue = append(queue, e.From)
			}
		}
	}
	return res
}

func entryState[T any](isEntry bool, entry T) (T, bool) {
	var zero T
	if isEntry {
		return entry, true
	}
	return zero, false
}

func joinInto[T any](lat Lattice[T], acc T, seeded bool, next T) (T, bool) {
	if !seeded {
		return next, true
	}
	return lat.Join(acc, next), true
}
