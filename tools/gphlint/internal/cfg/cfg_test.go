package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as the body of one function and returns its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return New(fn, nil)
		}
	}
	t.Fatal("no function found")
	return nil
}

// callsIn reports whether any node of b (or its Cond) contains a call
// to an identifier named name.
func callsIn(b *Block, name string) bool {
	found := false
	check := func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return true
		})
	}
	for _, n := range b.Nodes {
		check(n)
	}
	if b.Cond != nil {
		check(b.Cond)
	}
	return found
}

// findCall returns the first block containing a call to name.
func findCall(t *testing.T, g *Graph, name string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if callsIn(b, name) {
			return b
		}
	}
	t.Fatalf("no block calls %s in:\n%s", name, g)
	return nil
}

func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, e := range b.Succs {
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func succ(t *testing.T, b *Block, k EdgeKind) *Block {
	t.Helper()
	for _, e := range b.Succs {
		if e.Kind == k {
			return e.To
		}
	}
	t.Fatalf("block b%d has no %s successor", b.Index, k)
	return nil
}

func TestIfElseJoins(t *testing.T) {
	g := build(t, `if c() { a() } else { b() }; after()`)
	ab, bb, after := findCall(t, g, "a"), findCall(t, g, "b"), findCall(t, g, "after")
	for _, b := range []*Block{ab, bb} {
		if !reaches(b, after) {
			t.Errorf("branch b%d does not rejoin at after()", b.Index)
		}
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("exit unreachable")
	}
}

func TestNotNormalization(t *testing.T) {
	// "if !ok" must branch on the positive expression with swapped
	// targets: True continues past the if, False enters the body.
	g := build(t, `ok := c(); if !ok { a(); return }; b()`)
	cond := findCall(t, g, "c") // the block that assigns ok also branches on it
	if cond.Cond == nil {
		// the branch may have landed in a dedicated block
		for _, b := range g.Blocks {
			if id, ok := b.Cond.(*ast.Ident); ok && id.Name == "ok" {
				cond = b
			}
		}
	}
	id, ok := cond.Cond.(*ast.Ident)
	if !ok || id.Name != "ok" {
		t.Fatalf("cond is %T, want ident ok:\n%s", cond.Cond, g)
	}
	if tb := succ(t, cond, True); !callsIn(tb, "b") {
		t.Errorf("true edge should skip the negated body:\n%s", g)
	}
	if fb := succ(t, cond, False); !callsIn(fb, "a") {
		t.Errorf("false edge should enter the negated body:\n%s", g)
	}
}

func TestShortCircuitDecomposition(t *testing.T) {
	g := build(t, `if a() && b() { c() }; d()`)
	ca, cb := findCall(t, g, "a"), findCall(t, g, "b")
	if ca == cb {
		t.Fatalf("&& operands share a block:\n%s", g)
	}
	if succ(t, ca, True) != cb && !reaches(succ(t, ca, True), cb) {
		t.Errorf("a()'s true edge must evaluate b():\n%s", g)
	}
	// a() false skips b() entirely.
	fa := succ(t, ca, False)
	if callsIn(fa, "b") || !reaches(fa, findCall(t, g, "d")) {
		t.Errorf("a()'s false edge must short-circuit past b():\n%s", g)
	}
	if !callsIn(succ(t, cb, True), "c") && !reaches(succ(t, cb, True), findCall(t, g, "c")) {
		t.Errorf("b()'s true edge must enter the body:\n%s", g)
	}
}

func TestPanicEdge(t *testing.T) {
	g := build(t, `if c() { panic("x") }; a()`)
	pb := findCall(t, g, "panic")
	var toPanicExit bool
	for _, e := range pb.Succs {
		if e.To == g.PanicExit && e.Kind == Panic {
			toPanicExit = true
		}
		if e.To == g.Exit {
			t.Error("panic block must not flow to the normal exit")
		}
	}
	if !toPanicExit {
		t.Errorf("panic block lacks an edge to PanicExit:\n%s", g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("non-panicking path lost")
	}
}

func TestForLoopBackEdgeBreakContinue(t *testing.T) {
	g := build(t, `for i := 0; i < n; i++ { if a() { break }; if b() { continue }; c() }; after()`)
	body := findCall(t, g, "c")
	if !reaches(body, body) {
		t.Errorf("loop body has no back edge to itself:\n%s", g)
	}
	after := findCall(t, g, "after")
	brk := findCall(t, g, "a")
	if !reaches(succ(t, brk, True), after) {
		t.Errorf("break does not reach the loop exit:\n%s", g)
	}
	cont := findCall(t, g, "b")
	if !reaches(succ(t, cont, True), body) {
		t.Errorf("continue does not re-enter the loop:\n%s", g)
	}
}

func TestRangeHead(t *testing.T) {
	g := build(t, `for _, v := range xs { use(v) }; after()`)
	var head *Block
	for _, b := range g.Blocks {
		if b.Cond == nil && len(b.Succs) == 2 {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no range head:\n%s", g)
	}
	if !reaches(succ(t, head, True), findCall(t, g, "use")) {
		t.Errorf("range True edge misses the body:\n%s", g)
	}
	if !reaches(succ(t, head, False), findCall(t, g, "after")) {
		t.Errorf("range False edge misses the join:\n%s", g)
	}
	if !reaches(findCall(t, g, "use"), head) {
		t.Errorf("range body has no back edge:\n%s", g)
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := build(t, `switch tag() {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}
after()`)
	ab, bb := findCall(t, g, "a"), findCall(t, g, "b")
	direct := false
	for _, e := range ab.Succs {
		if e.To == bb {
			direct = true
		}
	}
	if !direct {
		t.Errorf("fallthrough case 1 -> case 2 missing:\n%s", g)
	}
	// With a default clause the dispatch must not bypass all arms.
	tagBlk := findCall(t, g, "tag")
	for _, e := range tagBlk.Succs {
		if callsIn(e.To, "after") {
			t.Errorf("switch with default must not flow straight past the arms:\n%s", g)
		}
	}
}

func TestGotoLabel(t *testing.T) {
	g := build(t, `if c() { goto done }; a()
done:
	b()`)
	cb := findCall(t, g, "c")
	if !reaches(succ(t, cb, True), findCall(t, g, "b")) {
		t.Errorf("goto does not reach its label:\n%s", g)
	}
	if callsIn(succ(t, cb, True), "a") {
		t.Errorf("goto edge must skip intervening code:\n%s", g)
	}
}

func TestSelectArms(t *testing.T) {
	g := build(t, `select {
case <-ch:
	a()
case v := <-ch2:
	use(v)
}
after()`)
	for _, name := range []string{"a", "use"} {
		if !reaches(findCall(t, g, name), findCall(t, g, "after")) {
			t.Errorf("select arm %s does not rejoin:\n%s", name, g)
		}
	}
}

func TestReturnTerminatesBlock(t *testing.T) {
	g := build(t, `a(); return
b()`)
	bb := findCall(t, g, "b")
	if reaches(g.Entry, bb) {
		t.Errorf("code after return is reachable:\n%s", g)
	}
	if len(bb.Preds) != 0 {
		t.Errorf("dead block has predecessors:\n%s", g)
	}
}

func TestDeferAndFuncLitOpaque(t *testing.T) {
	g := build(t, `defer cleanup()
go func() { inner() }()
a()`)
	var deferBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferBlock = b
			}
		}
	}
	if deferBlock == nil {
		t.Fatalf("defer statement not recorded as a node:\n%s", g)
	}
	// The FuncLit body is opaque: inner() appears textually but the
	// builder creates no separate blocks or edges for it; the whole
	// go statement is one straight-line node.
	if !reaches(g.Entry, g.Exit) {
		t.Error("exit unreachable")
	}
	dump := g.String()
	if strings.Contains(dump, "panic-exit") == false {
		t.Error("String() should mention the panic exit")
	}
}

func TestInfiniteLoop(t *testing.T) {
	g := build(t, `for { a() }`)
	if reaches(g.Entry, g.Exit) {
		t.Errorf("for{} must not reach the normal exit:\n%s", g)
	}
	ab := findCall(t, g, "a")
	if !reaches(ab, ab) {
		t.Errorf("for{} lost its back edge:\n%s", g)
	}
}
