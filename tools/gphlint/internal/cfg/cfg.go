// Package cfg builds intra-procedural control-flow graphs from go/ast
// function bodies. It is the substrate of gphlint's path-sensitive
// analyzers (leakcheck, epochpair, lockorder): where the first
// generation of the suite pattern-matched single AST nodes, these
// checks need to reason about *every* path out of a function —
// early returns, error branches, loop back edges, panic edges — so
// they solve dataflow equations over this graph instead.
//
// Design notes (see DESIGN.md §15):
//
//   - Blocks carry their statements in execution order in Nodes.
//     A block that ends in a two-way branch carries the branching
//     expression in Cond and exactly two successor edges, True and
//     False. Cond is evaluated after Nodes.
//   - Short-circuit conditions are decomposed: "a && b" becomes a
//     block conditioned on "a" whose True edge leads to a block
//     conditioned on "b". Analyzers therefore always see atomic
//     conditions and can refine state along True/False edges (the
//     mechanism leakcheck uses for "if !m.Acquire() { return }").
//   - Negations are normalized away: building "!x" as a condition
//     swaps the True and False targets of "x", so analyzers never
//     need to look through unary NOT.
//   - panic(...), os.Exit, runtime.Goexit and log.Fatal* terminate
//     their block with an edge to a distinguished PanicExit block.
//     Analyzers treat paths into PanicExit as vacuous: a leaked
//     refcount on a panicking process is not a reportable leak.
//   - defer statements are ordinary block nodes. Analyzers apply
//     their effects in place (a deferred Release makes every
//     downstream exit release), which is sound for the pairing
//     properties checked here because all returns run all registered
//     defers.
//   - Function literals are opaque: the builder does not descend
//     into FuncLit bodies. Analyzers build separate graphs for
//     literals they care about.
//
// The builder is syntax-driven; *types.Info is optional and only
// sharpens the detection of no-return calls (the builtin panic).
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An EdgeKind classifies a control-flow edge.
type EdgeKind uint8

const (
	// Next is unconditional fallthrough (also: the edge into each
	// case/select arm, whose guards are not two-way branches).
	Next EdgeKind = iota
	// True is taken when the source block's Cond evaluates true. For
	// a range-loop head (Cond == nil) it is the "iteration available"
	// edge into the body.
	True
	// False is the complement of True; for a range head it is the
	// "exhausted" edge.
	False
	// Panic leads to Graph.PanicExit from a no-return call.
	Panic
)

func (k EdgeKind) String() string {
	switch k {
	case Next:
		return "next"
	case True:
		return "true"
	case False:
		return "false"
	case Panic:
		return "panic"
	}
	return "?"
}

// An Edge is one directed control-flow edge.
type Edge struct {
	From, To *Block
	Kind     EdgeKind
}

// A Block is a straight-line run of statements with branching only at
// the end.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, build
	// order).
	Index int
	// Nodes are the block's statements and decomposed sub-expressions
	// (switch tags, case guards) in execution order.
	Nodes []ast.Node
	// Cond, when non-nil, is the atomic boolean expression the block
	// branches on after executing Nodes; Succs then holds exactly one
	// True and one False edge. A nil Cond with True/False successors
	// is a range-loop head.
	Cond ast.Expr
	// Succs and Preds are the outgoing and incoming edges.
	Succs []Edge
	Preds []Edge
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block, Entry first. Blocks unreachable from
	// Entry (code after return) are present but never visited by the
	// solver.
	Blocks []*Block
	// Entry is where execution starts.
	Entry *Block
	// Exit is the single normal-return block (empty; every return
	// statement and the implicit fall-off-the-end edge lead here).
	Exit *Block
	// PanicExit collects abnormal terminations (panic, os.Exit, ...).
	PanicExit *Block
}

// New builds the graph of a function body. fn must be an
// *ast.FuncDecl or *ast.FuncLit with a non-nil body; info may be nil.
func New(fn ast.Node, info *types.Info) *Graph {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	default:
		panic(fmt.Sprintf("cfg.New: not a function: %T", fn))
	}
	b := &builder{
		g:      &Graph{},
		info:   info,
		labels: map[string]*Block{},
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.g.PanicExit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.jump(b.g.Exit)
	return b.g
}

// String renders the graph for tests and debugging: one line per
// block listing its contents and successors.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d", blk.Index)
		switch blk {
		case g.Entry:
			sb.WriteString(" (entry)")
		case g.Exit:
			sb.WriteString(" (exit)")
		case g.PanicExit:
			sb.WriteString(" (panic-exit)")
		}
		fmt.Fprintf(&sb, ": nodes=%d", len(blk.Nodes))
		if blk.Cond != nil {
			sb.WriteString(" cond")
		}
		sb.WriteString(" ->")
		for _, e := range blk.Succs {
			fmt.Fprintf(&sb, " b%d(%s)", e.To.Index, e.Kind)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// loopTarget records where break and continue jump for one enclosing
// breakable statement.
type loopTarget struct {
	label string
	brk   *Block // nil for statements break cannot target
	cont  *Block // nil for switch/select
}

type builder struct {
	g    *Graph
	info *types.Info
	cur  *Block // nil after a terminator; lazily replaced by an unreachable block

	targets []loopTarget
	labels  map[string]*Block // goto/labeled-statement targets, by name
	fall    *Block            // fallthrough target inside a switch clause
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// current returns the block under construction, creating a fresh
// unreachable one if the previous block was terminated (statements
// after return/panic/goto).
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) edge(from, to *Block, k EdgeKind) {
	e := Edge{From: from, To: to, Kind: k}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// jump ends the current block with an unconditional edge to target
// (no-op on an already-terminated path).
func (b *builder) jump(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to, Next)
		b.cur = nil
	}
}

func (b *builder) addNode(n ast.Node) { b.current().Nodes = append(b.current().Nodes, n) }

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// labelBlock returns (creating on demand) the block a label names, so
// forward and backward gotos both resolve.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// findTarget resolves break/continue to its jump block.
func (b *builder) findTarget(label string, cont bool) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label != "" && t.label != label {
			continue
		}
		if cont {
			if t.cont != nil {
				return t.cont
			}
			if label != "" {
				return nil // continue to a non-loop label: invalid code
			}
			continue // innermost breakable is a switch; keep looking for a loop
		}
		return t.brk
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(lb)
		b.cur = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.addNode(s.Init)
		}
		then := b.newBlock()
		var after, els *Block
		after = b.newBlock()
		els = after
		if s.Else != nil {
			els = b.newBlock()
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmtList(s.Body.List)
		b.jump(after)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else, "")
			b.jump(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.addNode(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, after)
		} else {
			b.jump(body)
		}
		b.targets = append(b.targets, loopTarget{label: label, brk: after, cont: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.targets = b.targets[:len(b.targets)-1]
		b.jump(post)
		if s.Post != nil {
			b.cur = post
			b.addNode(s.Post)
			b.jump(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		// Only the ranged expression is recorded (once, before the
		// head); recording the whole RangeStmt would duplicate the
		// body statements that get their own blocks below.
		b.addNode(s.X)
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.jump(head)
		b.edge(head, body, True)   // an iteration is available
		b.edge(head, after, False) // exhausted
		b.targets = append(b.targets, loopTarget{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.targets = b.targets[:len(b.targets)-1]
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.addNode(s.Init)
		}
		if s.Tag != nil {
			b.addNode(s.Tag)
		}
		b.caseDispatch(s.Body.List, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.addNode(s.Init)
		}
		b.addNode(s.Assign)
		b.caseDispatch(s.Body.List, label, false)

	case *ast.SelectStmt:
		entry := b.current()
		b.cur = nil
		after := b.newBlock()
		b.targets = append(b.targets, loopTarget{label: label, brk: after})
		hasDefault := false
		for _, c := range s.Body.List {
			clause := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(entry, blk, Next)
			if clause.Comm == nil {
				hasDefault = true
			}
			b.cur = blk
			if clause.Comm != nil {
				b.addNode(clause.Comm)
			}
			b.stmtList(clause.Body)
			b.jump(after)
		}
		b.targets = b.targets[:len(b.targets)-1]
		if len(s.Body.List) == 0 || hasDefault {
			// An empty select blocks forever; a default select always
			// proceeds. Either way "after" is only reachable through
			// the arms already wired (or not at all).
			_ = hasDefault
		}
		b.cur = after

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(labelName(s.Label), false); t != nil {
				b.jump(t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findTarget(labelName(s.Label), true); t != nil {
				b.jump(t)
			}
			b.cur = nil
		case token.GOTO:
			b.jump(b.labelBlock(s.Label.Name))
		case token.FALLTHROUGH:
			if b.fall != nil {
				b.jump(b.fall)
			}
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.addNode(s)
		b.jump(b.g.Exit)

	case *ast.ExprStmt:
		b.addNode(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.noReturn(call) {
			b.edge(b.current(), b.g.PanicExit, Panic)
			b.cur = nil
		}

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt,
		// DeferStmt, EmptyStmt: straight-line.
		if _, ok := s.(*ast.EmptyStmt); !ok {
			b.addNode(s)
		}
	}
}

// caseDispatch wires a (type) switch: the entry block fans out to one
// block per clause; without a default clause it also flows directly to
// the join block. allowFall enables fallthrough chaining.
func (b *builder) caseDispatch(clauses []ast.Stmt, label string, allowFall bool) {
	entry := b.current()
	b.cur = nil
	after := b.newBlock()
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(entry, blocks[i], Next)
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(entry, after, Next)
	}
	b.targets = append(b.targets, loopTarget{label: label, brk: after})
	savedFall := b.fall
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, guard := range cc.List {
			b.addNode(guard)
		}
		b.fall = nil
		if allowFall && i+1 < len(clauses) {
			b.fall = blocks[i+1]
		}
		b.stmtList(cc.Body)
		b.jump(after)
	}
	b.fall = savedFall
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// cond wires e as a branching condition with the given true/false
// targets, decomposing short-circuit operators and normalizing
// negation. It terminates the current block.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	}
	blk := b.current()
	blk.Cond = e
	b.edge(blk, t, True)
	b.edge(blk, f, False)
	b.cur = nil
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

// noReturn reports whether the call never returns to its caller:
// the panic builtin, os.Exit, runtime.Goexit, and log.Fatal*.
func (b *builder) noReturn(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info != nil {
			_, isBuiltin := b.info.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
		return true
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		// Resolve the package identity through types when available;
		// fall back to the syntactic package name otherwise.
		path := pkg.Name
		if b.info != nil {
			obj, ok := b.info.Uses[pkg].(*types.PkgName)
			if !ok {
				return false // a value, not a package qualifier
			}
			path = obj.Imported().Path()
		}
		switch path {
		case "os":
			return fun.Sel.Name == "Exit"
		case "runtime":
			return fun.Sel.Name == "Goexit"
		case "log":
			return strings.HasPrefix(fun.Sel.Name, "Fatal")
		}
	}
	return false
}
