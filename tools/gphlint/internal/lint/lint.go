// Package lint is gphlint's analysis framework: a self-contained,
// stdlib-only equivalent of the golang.org/x/tools/go/analysis API
// (the repo builds offline and vendors nothing, so the framework the
// multichecker needs is implemented here on go/ast and go/types).
// It defines the Analyzer/Pass contract, package facts for
// cross-package analyses, and the suppression-comment convention;
// the drivers live in unit.go (go vet -vettool protocol) and in
// testkit (fixture tests).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named invariant check. Run inspects a single
// type-checked package through its Pass and reports diagnostics;
// analyses that need cross-package state exchange it through package
// facts (FactTypes declares the concrete types used, for gob).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// suppression comments; it must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// FactTypes lists prototype values of every fact type the
	// analyzer exports or imports (registered with gob).
	FactTypes []Fact
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// A Fact is a datum one package's analysis leaves behind for the
// packages that import it (directly or transitively). Concrete fact
// types must be gob-serializable structs; the marker method keeps
// arbitrary types from being exported accidentally.
type Fact interface{ AFact() }

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	// Pos locates the violation.
	Pos token.Pos
	// Message describes it; the analyzer name is prefixed
	// automatically when printed.
	Message string
	// Analyzer is the reporting analyzer's name (filled by the
	// driver).
	Analyzer string
	// Suppressed marks findings masked by a //gphlint:ignore comment.
	// The drivers keep them (flagged) instead of dropping them so the
	// -json output and the -suppressions staleness check can tell a
	// suppression that masks a live finding from one that masks
	// nothing.
	Suppressed bool
}

// A PackageFact pairs an imported fact with the package that
// exported it.
type PackageFact struct {
	// Path is the exporting package's import path.
	Path string
	// Fact is the decoded fact value.
	Fact Fact
}

// A Pass carries one package's syntax, types and fact store through
// an analyzer's Run. The analyzer must treat everything reachable
// from it as read-only except via Report and ExportPackageFact.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// ModulePath is the path of the module the package belongs to
	// ("" for packages outside any module, e.g. the standard
	// library under the vettool protocol). Analyzers gate fact
	// computation on it so dependency-only runs over the standard
	// library stay cheap.
	ModulePath string
	// Report records one diagnostic.
	Report func(Diagnostic)
	// ExportPackageFact publishes a fact about the current package
	// to every package that imports it.
	ExportPackageFact func(fact Fact)
	// ImportPackageFact copies the fact of type *ptr exported by
	// path into ptr, reporting whether one exists. Facts flow from
	// the full import closure, not just direct imports.
	ImportPackageFact func(path string, ptr Fact) bool
	// AllPackageFacts lists every imported fact whose type matches
	// one of the analyzer's FactTypes, in deterministic order.
	AllPackageFacts func() []PackageFact
	// Suppressed reports whether a //gphlint:ignore comment for this
	// analyzer covers pos. The driver already drops suppressed
	// diagnostics; fact-producing analyzers additionally consult this
	// so a suppressed finding does not leak into an exported fact and
	// resurface in a downstream package.
	Suppressed func(pos token.Pos) bool
	// Shared memoizes a derived structure per compilation unit so
	// analyzers that need the same expensive artifact (the
	// control-flow graphs leakcheck, epochpair and lockorder all
	// solve over) build it once instead of once per analyzer. The
	// first caller's build result is returned to every later caller
	// of the same key.
	Shared func(key string, build func() any) any
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InModule reports whether the package under analysis belongs to the
// repository module. Fact-producing analyzers use it to skip
// dependency-only runs over the standard library.
func (p *Pass) InModule() bool { return p.ModulePath != "" }

// IsTestFile reports whether pos lies in a _test.go file. The
// analyzers check production invariants only: go vet hands each
// package to the tool with its test files compiled in, and test
// fakes are free to break hot-path or sentinel rules.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f == nil || strings.HasSuffix(f.Name(), "_test.go")
}

// HasAnnotation reports whether the doc comment group carries the
// given //gph:<marker> annotation (exact word on its own line, e.g.
// //gph:hotpath).
func HasAnnotation(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// AnnotationArg returns the first argument of a //gph:<marker> <arg>
// annotation ("" with ok=true for a bare marker, ok=false when the
// marker is absent). Resource-class annotations use it:
// //gph:acquire mapping, //gph:release scratch, //gph:transfer
// scratch.
func AnnotationArg(doc *ast.CommentGroup, marker string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, marker+" "); ok {
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				return "", true
			}
			return fields[0], true
		}
	}
	return "", false
}
