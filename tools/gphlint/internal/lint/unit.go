package lint

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
)

// Config mirrors the JSON compilation-unit description "go vet"
// hands to a -vettool (the same schema x/tools' unitchecker
// consumes); only the fields gphlint uses are declared.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxPayload is the on-disk fact format: every (package, fact type)
// entry this unit knows, own facts and imported ones alike. Facts are
// re-exported transitively because go vet supplies only the .vetx
// files of *direct* vet dependencies.
type vetxPayload struct {
	Entries []vetxEntry
}

type vetxEntry struct {
	Path     string
	FactType string
	Data     []byte
}

// RunUnit executes the analyzers on the compilation unit described
// by the vet.cfg file at cfgPath, printing diagnostics to stderr in
// file:line:col format. It returns the number of unsuppressed
// diagnostics.
//
// When jsonOut is non-nil the diagnostics are instead written there
// as one JSON object per unit, keyed by import path then analyzer —
// the same shape x/tools' unitchecker emits under "go vet -json" —
// with each entry carrying posn, message and a suppressed flag.
// Suppressed findings are included (flagged) so downstream tooling
// (the -suppressions staleness check) can distinguish a suppression
// that masks a live finding from a stale one.
func RunUnit(cfgPath string, analyzers []*Analyzer, jsonOut io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("cannot decode vet config %s: %w", cfgPath, err)
	}
	if len(cfg.GoFiles) == 0 {
		return 0, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	RegisterFactTypes(analyzers)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil // the compiler reports the real error
			}
			return 0, err
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  unitImporter(cfg, fset),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	store := NewFactStore()
	for path, vetx := range cfg.PackageVetx {
		if err := readVetx(store, vetx); err != nil {
			return 0, fmt.Errorf("reading facts of %s: %w", path, err)
		}
	}

	unit := &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info, ModulePath: cfg.ModulePath}
	diags, err := RunAnalyzers(unit, analyzers, store)
	if err != nil {
		return 0, err
	}

	if cfg.VetxOutput != "" {
		if err := writeVetx(store, cfg.VetxOutput); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	n := 0
	for _, d := range diags {
		if !d.Suppressed {
			n++
		}
	}
	if jsonOut != nil {
		return n, writeJSONDiags(jsonOut, cfg.ImportPath, fset, diags)
	}
	for _, d := range diags {
		if !d.Suppressed {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		}
	}
	return n, nil
}

// jsonDiagnostic is one finding in the -json output.
type jsonDiagnostic struct {
	Posn       string `json:"posn"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// writeJSONDiags emits {importPath: {analyzer: [diag...]}} for one
// unit. Analyzers without findings are omitted, matching the
// unitchecker shape "go vet -json" consumers expect.
func writeJSONDiags(w io.Writer, importPath string, fset *token.FileSet, diags []Diagnostic) error {
	byAnalyzer := map[string][]jsonDiagnostic{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiagnostic{
			Posn:       fset.Position(d.Pos).String(),
			Message:    d.Message,
			Suppressed: d.Suppressed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(map[string]map[string][]jsonDiagnostic{importPath: byAnalyzer})
}

// unitImporter resolves imports through the export data the build
// system already produced (cfg.PackageFile), exactly as the compiler
// would — no source re-typechecking, no network.
func unitImporter(cfg *Config, fset *token.FileSet) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func readVetx(store *FactStore, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	var payload vetxPayload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&payload); err != nil {
		return err
	}
	for _, e := range payload.Entries {
		store.entries[factKey{e.Path, e.FactType}] = e.Data
	}
	return nil
}

func writeVetx(store *FactStore, path string) error {
	payload := vetxPayload{}
	for key, data := range store.entries {
		payload.Entries = append(payload.Entries, vetxEntry{Path: key.path, FactType: key.factType, Data: data})
	}
	// Deterministic order keeps the build cache's content hashing
	// stable across runs.
	sort.Slice(payload.Entries, func(i, j int) bool {
		a, b := payload.Entries[i], payload.Entries[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		return a.FactType < b.FactType
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o666)
}
