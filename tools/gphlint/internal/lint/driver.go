package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A FactStore accumulates package facts across a run. Under the
// vettool protocol each compilation unit starts a fresh store seeded
// from the .vetx files of its imports; the fixture testkit shares one
// store across the packages of a test.
type FactStore struct {
	// entries maps (package path, fact type name) to the encoded
	// fact. Facts stay gob-encoded at rest so both drivers share one
	// representation and fact types are forced to be serializable.
	entries map[factKey][]byte
}

type factKey struct {
	path     string
	factType string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{entries: map[factKey][]byte{}}
}

func factTypeName(f Fact) string { return reflect.TypeOf(f).String() }

func (s *FactStore) set(path string, fact Fact) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return fmt.Errorf("encoding %s fact for %s: %w", factTypeName(fact), path, err)
	}
	s.entries[factKey{path, factTypeName(fact)}] = buf.Bytes()
	return nil
}

func (s *FactStore) get(path string, ptr Fact) bool {
	data, ok := s.entries[factKey{path, factTypeName(ptr)}]
	if !ok {
		return false
	}
	return gob.NewDecoder(bytes.NewReader(data)).Decode(ptr) == nil
}

// all returns every stored fact assignable to the prototype's type,
// sorted by package path for deterministic reporting.
func (s *FactStore) all(prototypes []Fact) []PackageFact {
	var out []PackageFact
	for key, data := range s.entries {
		for _, proto := range prototypes {
			if key.factType != factTypeName(proto) {
				continue
			}
			ptr := reflect.New(reflect.TypeOf(proto).Elem()).Interface().(Fact)
			if gob.NewDecoder(bytes.NewReader(data)).Decode(ptr) == nil {
				out = append(out, PackageFact{Path: key.path, Fact: ptr})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// A Unit is one type-checked package ready for analysis; both
// drivers produce it.
type Unit struct {
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files is the parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results.
	Info *types.Info
	// ModulePath is the owning module's path ("" outside the repo
	// module).
	ModulePath string
}

// RunAnalyzers executes each analyzer on the unit, importing facts
// from and exporting facts to store. It returns every diagnostic
// sorted by position; findings masked by a //gphlint:ignore comment
// are kept with Suppressed set (callers gate on it) so report modes
// can still see them.
func RunAnalyzers(unit *Unit, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	sup := collectSuppressions(unit.Fset, unit.Files)
	shared := map[string]any{}
	var out []Diagnostic
	for _, a := range analyzers {
		a := a
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:   a,
			Fset:       unit.Fset,
			Files:      unit.Files,
			Pkg:        unit.Pkg,
			TypesInfo:  unit.Info,
			ModulePath: unit.ModulePath,
			Report:     func(d Diagnostic) { diags = append(diags, d) },
			ExportPackageFact: func(fact Fact) {
				if err := store.set(unit.Pkg.Path(), fact); err != nil {
					panic(err)
				}
			},
			ImportPackageFact: func(path string, ptr Fact) bool {
				return store.get(path, ptr)
			},
			AllPackageFacts: func() []PackageFact {
				return store.all(a.FactTypes)
			},
			Suppressed: func(pos token.Pos) bool {
				return sup.suppressed(a.Name, unit.Fset.Position(pos))
			},
			Shared: func(key string, build func() any) any {
				if v, ok := shared[key]; ok {
					return v
				}
				v := build()
				shared[key] = v
				return v
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range diags {
			d.Analyzer = a.Name
			d.Suppressed = sup.suppressed(a.Name, unit.Fset.Position(d.Pos))
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// suppressions records, per file and line, which analyzers a
// //gphlint:ignore comment silences.
type suppressions struct {
	byLine map[string]map[int][]string // file → line → analyzer names
}

// collectSuppressions scans every comment for the form
//
//	//gphlint:ignore <analyzer> [reason...]
//
// which silences the named analyzer's findings on the comment's line
// and on the line immediately below (so the comment can sit on its
// own line above the offending statement).
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "gphlint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "gphlint:ignore"))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
				lines[pos.Line+1] = append(lines[pos.Line+1], fields[0])
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	for _, name := range s.byLine[pos.Filename][pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// RegisterFactTypes registers every analyzer's fact prototypes with
// gob; both drivers call it once before decoding any store.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}
