package lint

import (
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A SuppressionSite is one //gphlint:ignore comment in the tree.
type SuppressionSite struct {
	File     string // absolute path
	Line     int
	Analyzer string
	Reason   string
	// Stale is true when the site masks no diagnostic: either no
	// finding of its analyzer lands on the covered lines in any of
	// the supplied findings files, or it names an unknown analyzer.
	Stale bool
}

// SuppressionReport walks the Go tree under root, prints every
// //gphlint:ignore site to out, and returns how many are stale.
// Staleness is judged against findingsFiles — the stdout of one or
// more "go vet -json -vettool=gphlint" runs (which include suppressed
// findings, flagged) — so a suppression is stale only if it masks
// nothing under *every* supplied configuration (e.g. both build
// tags). With no findings files the inventory is listed without a
// staleness verdict, except that suppressions naming an unknown
// analyzer are always stale. Fixture trees (testdata directories) and
// _test.go files are outside the gate and are skipped.
func SuppressionReport(out io.Writer, root string, findingsFiles []string, knownAnalyzers map[string]bool) (stale int, err error) {
	sites, err := collectSuppressionSites(root)
	if err != nil {
		return 0, err
	}
	masked, err := readFindings(findingsFiles)
	if err != nil {
		return 0, err
	}

	for _, s := range sites {
		switch {
		case !knownAnalyzers[s.Analyzer]:
			s.Stale = true
		case len(findingsFiles) > 0:
			s.Stale = !masked[findingKey{s.File, s.Line, s.Analyzer}] &&
				!masked[findingKey{s.File, s.Line + 1, s.Analyzer}]
		}
		if s.Stale {
			stale++
		}
	}

	rel := func(path string) string {
		if r, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return path
	}
	fmt.Fprintf(out, "suppression inventory (%d sites):\n", len(sites))
	for _, s := range sites {
		mark := ""
		if s.Stale {
			mark = "  [STALE: masks no diagnostic]"
		}
		fmt.Fprintf(out, "  %s:%d: %s — %s%s\n", rel(s.File), s.Line, s.Analyzer, s.Reason, mark)
	}
	switch {
	case len(findingsFiles) == 0:
		fmt.Fprintf(out, "staleness not checked (no -findings files given)\n")
	case stale > 0:
		fmt.Fprintf(out, "%d stale suppression(s): delete them or fix the rot they hide\n", stale)
	default:
		fmt.Fprintf(out, "no stale suppressions\n")
	}
	return stale, nil
}

// collectSuppressionSites parses every non-test Go file under root
// (skipping testdata fixtures and VCS/vendor directories) and returns
// its //gphlint:ignore comments sorted by position.
func collectSuppressionSites(root string) ([]*SuppressionSite, error) {
	var sites []*SuppressionSite
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "vendor", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "gphlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				sites = append(sites, &SuppressionSite{
					File:     abs,
					Line:     fset.Position(c.Pos()).Line,
					Analyzer: fields[0],
					Reason:   strings.Join(fields[1:], " "),
				})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].File != sites[j].File {
			return sites[i].File < sites[j].File
		}
		return sites[i].Line < sites[j].Line
	})
	return sites, nil
}

type findingKey struct {
	file     string
	line     int
	analyzer string
}

// readFindings decodes the concatenated per-unit JSON objects of
// "go vet -json -vettool=gphlint" runs into the set of
// (file, line, analyzer) triples at which *some* diagnostic —
// suppressed or not — was produced. go vet interleaves the JSON with
// "# pkgpath" header lines on the same stream, so those are stripped
// first: CI can redirect the vet run's combined output straight into
// the findings file.
func readFindings(files []string) (map[findingKey]bool, error) {
	masked := map[findingKey]bool{}
	for _, name := range files {
		raw, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		var kept []string
		for _, line := range strings.Split(string(raw), "\n") {
			if !strings.HasPrefix(line, "#") {
				kept = append(kept, line)
			}
		}
		dec := json.NewDecoder(strings.NewReader(strings.Join(kept, "\n")))
		for {
			var unit map[string]map[string][]jsonDiagnostic
			if err := dec.Decode(&unit); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("decoding findings %s: %w", name, err)
			}
			for _, byAnalyzer := range unit {
				for analyzer, diags := range byAnalyzer {
					for _, d := range diags {
						file, line, ok := splitPosn(d.Posn)
						if !ok {
							continue
						}
						masked[findingKey{file, line, analyzer}] = true
					}
				}
			}
		}
	}
	return masked, nil
}

// splitPosn parses "file:line:col" (or "file:line").
func splitPosn(posn string) (file string, line int, ok bool) {
	// Trim the column, then the line, from the right; the filename
	// may not contain further structure worth parsing.
	s := posn
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return "", 0, false
	}
	if n, err := strconv.Atoi(s[i+1:]); err == nil {
		// Could be a line (file:line) or a column (file:line:col);
		// try to strip one more numeric field.
		j := strings.LastIndexByte(s[:i], ':')
		if j >= 0 {
			if l, err := strconv.Atoi(s[j+1 : i]); err == nil {
				return s[:j], l, true
			}
		}
		return s[:i], n, true
	}
	return "", 0, false
}
