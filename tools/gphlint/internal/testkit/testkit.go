// Package testkit runs gphlint analyzers over fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest (which the
// offline build cannot depend on): fixtures live under
// testdata/src/<import path>/, expectations are "// want" comments,
// and fixture imports of other fixture packages are analyzed first so
// package facts flow exactly as they do under go vet.
package testkit

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gph/tools/gphlint/internal/lint"
)

// stdFset and stdImporter are shared across every test in the
// process: the source importer re-typechecks standard-library
// packages from GOROOT source (there are no export-data archives to
// load in a source-only toolchain), which is far too slow to repeat
// per test.
var (
	stdFset     = token.NewFileSet()
	stdImporter = importer.ForCompiler(stdFset, "source", nil)
)

// Run loads the fixture package at testdata/src/<path> (plus,
// recursively, any fixture packages it imports), runs the analyzer
// over all of them with a shared fact store, and diffs the
// diagnostics reported in the named package against its // want
// comments. Dependency fixtures contribute facts only, mirroring go
// vet's fact-only runs over dependencies.
func Run(t *testing.T, a *lint.Analyzer, path string) {
	t.Helper()
	lint.RegisterFactTypes([]*lint.Analyzer{a})
	l := &loader{
		t:        t,
		analyzer: a,
		store:    lint.NewFactStore(),
		pkgs:     map[string]*fixturePkg{},
	}
	target := l.load(path)
	if target == nil {
		t.Fatalf("fixture package %s did not load", path)
	}
	checkWants(t, a, target)
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	unit  *lint.Unit
	diags []lint.Diagnostic
}

type loader struct {
	t        *testing.T
	analyzer *lint.Analyzer
	store    *lint.FactStore
	pkgs     map[string]*fixturePkg
	loading  []string // cycle detection, in order
}

// Import resolves an import inside a fixture: fixture packages win
// over the standard library, so fixtures can shadow paths if a test
// ever needs to.
func (l *loader) Import(path string) (*types.Package, error) {
	if fixtureDir(path) != "" {
		if p := l.load(path); p != nil {
			return p.unit.Pkg, nil
		}
	}
	return stdImporter.Import(path)
}

// fixtureDir returns the on-disk directory for a fixture import path,
// or "" when no such fixture exists.
func fixtureDir(path string) string {
	dir := filepath.Join("testdata", "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// load parses, typechecks and analyzes one fixture package,
// memoized.
func (l *loader) load(path string) *fixturePkg {
	l.t.Helper()
	if p, ok := l.pkgs[path]; ok {
		return p
	}
	for _, open := range l.loading {
		if open == path {
			l.t.Fatalf("fixture import cycle through %s", path)
		}
	}
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := fixtureDir(path)
	if dir == "" {
		l.t.Fatalf("no fixture directory for %s", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(stdFset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			l.t.Fatalf("parsing fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.t.Fatalf("fixture %s has no Go files", path)
	}
	sort.Slice(files, func(i, j int) bool {
		return stdFset.Position(files[i].Pos()).Filename < stdFset.Position(files[j].Pos()).Filename
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, stdFset, files, info)
	if err != nil {
		l.t.Fatalf("typechecking fixture %s: %v", path, err)
	}

	unit := &lint.Unit{
		Fset:       stdFset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		ModulePath: "gph", // fixtures pose as repo-module packages
	}
	diags, err := lint.RunAnalyzers(unit, []*lint.Analyzer{l.analyzer}, l.store)
	if err != nil {
		l.t.Fatalf("running %s on fixture %s: %v", l.analyzer.Name, path, err)
	}
	p := &fixturePkg{unit: unit, diags: diags}
	l.pkgs[path] = p
	return p
}

// wantRE matches one quoted expectation in a // want comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one // want entry: a regexp the message of a
// diagnostic on that line must match.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// checkWants diffs the diagnostics of the package under test against
// its // want comments, analysistest-style: every diagnostic must
// match an expectation on its line, and every expectation must be
// consumed by exactly one diagnostic.
func checkWants(t *testing.T, a *lint.Analyzer, p *fixturePkg) {
	t.Helper()
	var wants []*expectation
	for _, f := range p.unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 || !strings.HasPrefix(strings.TrimLeft(strings.TrimPrefix(text, "//"), " \t"), "want ") {
					continue
				}
				pos := p.unit.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[i:], -1) {
					pat, err := strconv.Unquote(`"` + m[1] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range p.diags {
		if d.Suppressed {
			continue // masked by //gphlint:ignore, as under go vet
		}
		pos := p.unit.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", pos.Filename, pos.Line, a.Name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
