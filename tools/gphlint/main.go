// Command gphlint is the repository's custom static-analysis suite:
// a go vet -vettool multichecker whose analyzers machine-check the
// invariants the codebase is built on — allocation-free hot paths,
// immutable published snapshots, sentinel-wrapped validation errors,
// deterministic persistence, unique 8-byte persistence magics, the
// documentation rules the old tools/doccheck enforced, and (since the
// CFG/dataflow engine, DESIGN.md §15) the path-sensitive pairing
// invariants: resource Acquire/Release on every path (leakcheck),
// snapshot Store post-dominated by an epoch bump (epochpair), and
// module-wide lock-acquisition ordering with the group-commit fsync
// rule (lockorder).
//
// Usage (CI runs exactly this, under both build tags):
//
//	go build -o /tmp/gphlint ./tools/gphlint
//	go vet -vettool=/tmp/gphlint ./...
//	go vet -tags gph_simd -vettool=/tmp/gphlint ./...
//
// The tool implements the -vettool command-line protocol: it answers
// -V=full (build-cache identity), -flags (supported flags as JSON)
// and then analyzes one compilation unit per vet.cfg file that "go
// vet" hands it. "go vet -json -vettool=gphlint" forwards -json and
// the tool emits machine-readable findings (suppressed ones flagged)
// instead of stderr text. Findings are suppressed line-by-line with
//
//	//gphlint:ignore <analyzer> <reason>
//
// placed on, or directly above, the offending line (see DESIGN.md
// §11). The exception inventory is kept honest by the report mode
//
//	gphlint -suppressions [-findings vet.json]... [dir]
//
// which lists every //gphlint:ignore site under dir and — when given
// the -json output of one or more full vet runs — fails on *stale*
// suppressions that no longer mask any diagnostic, so the inventory
// can only shrink. The framework is self-contained on the standard
// library; the repo deliberately takes no dependency on
// golang.org/x/tools.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"gph/tools/gphlint/analyzers"
	"gph/tools/gphlint/internal/lint"
)

func main() {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	var findings multiFlag
	flag.Var(versionFlag{}, "V", "print version and exit (the go vet build-cache protocol)")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (the go vet protocol)")
	jsonOut := flag.Bool("json", false, "emit JSON diagnostics (including suppressed ones) to stdout")
	suppressions := flag.Bool("suppressions", false, "report every //gphlint:ignore site under the given directory")
	flag.Var(&findings, "findings", "with -suppressions: a -json findings file to check suppressions against (repeatable; any stale suppression fails the run)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=%s ./...\n", progname)
		fmt.Fprintf(os.Stderr, "       %s -suppressions [-findings vet.json]... [dir]\n\nAnalyzers:\n", progname)
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
		os.Exit(2)
	}
	flag.Parse()

	if *printFlags {
		// go vet matches its own command line against this list and
		// forwards any flag named here; -json is the only pass-through
		// gphlint accepts.
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON diagnostics to stdout"}]`)
		return
	}

	if *suppressions {
		root := "."
		if args := flag.Args(); len(args) == 1 {
			root = args[0]
		} else if len(args) > 1 {
			flag.Usage()
		}
		stale, err := lint.SuppressionReport(os.Stdout, root, findings, analyzerNames())
		if err != nil {
			log.Fatal(err)
		}
		if stale > 0 {
			os.Exit(1)
		}
		return
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
	}
	var jw io.Writer
	if *jsonOut {
		jw = os.Stdout
	}
	n, err := lint.RunUnit(args[0], analyzers.All(), jw)
	if err != nil {
		log.Fatal(err)
	}
	// In -json mode findings are data, not failures (matching
	// unitchecker): the plain gate run is what fails CI.
	if n > 0 && !*jsonOut {
		os.Exit(1)
	}
}

func analyzerNames() map[string]bool {
	names := map[string]bool{}
	for _, a := range analyzers.All() {
		names[a.Name] = true
	}
	return names
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// versionFlag answers -V=full with a content hash of the executable,
// the identity "go vet" folds into its build cache so results are
// invalidated when the tool changes.
type versionFlag struct{}

// IsBoolFlag lets -V appear without a value in usage listings.
func (versionFlag) IsBoolFlag() bool { return true }

// String renders the zero flag value.
func (versionFlag) String() string { return "" }

// Set implements the -V=full protocol and exits.
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", filepath.Base(os.Args[0]), string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
