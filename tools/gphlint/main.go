// Command gphlint is the repository's custom static-analysis suite:
// a go vet -vettool multichecker whose analyzers machine-check the
// invariants the codebase is built on — allocation-free hot paths,
// immutable published snapshots, sentinel-wrapped validation errors,
// deterministic persistence, unique 8-byte persistence magics, and
// the documentation rules the old tools/doccheck enforced.
//
// Usage (CI runs exactly this):
//
//	go build -o /tmp/gphlint ./tools/gphlint
//	go vet -vettool=/tmp/gphlint ./...
//
// The tool implements the -vettool command-line protocol: it answers
// -V=full (build-cache identity), -flags (supported flags as JSON)
// and then analyzes one compilation unit per vet.cfg file that "go
// vet" hands it. Findings are suppressed line-by-line with
//
//	//gphlint:ignore <analyzer> <reason>
//
// placed on, or directly above, the offending line (see DESIGN.md
// §11). The framework is self-contained on the standard library; the
// repo deliberately takes no dependency on golang.org/x/tools.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"gph/tools/gphlint/analyzers"
	"gph/tools/gphlint/internal/lint"
)

func main() {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	flag.Var(versionFlag{}, "V", "print version and exit (the go vet build-cache protocol)")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (the go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=%s ./...\n\nAnalyzers:\n", progname)
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
		os.Exit(2)
	}
	flag.Parse()

	if *printFlags {
		// go vet matches its own command line against this list; an
		// empty list means gphlint takes no pass-through flags.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
	}
	n, err := lint.RunUnit(args[0], analyzers.All())
	if err != nil {
		log.Fatal(err)
	}
	if n > 0 {
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// versionFlag answers -V=full with a content hash of the executable,
// the identity "go vet" folds into its build cache so results are
// invalidated when the tool changes.
type versionFlag struct{}

// IsBoolFlag lets -V appear without a value in usage listings.
func (versionFlag) IsBoolFlag() bool { return true }

// String renders the zero flag value.
func (versionFlag) String() string { return "" }

// Set implements the -V=full protocol and exits.
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", filepath.Base(os.Args[0]), string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
