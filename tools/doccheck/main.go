// Command doccheck is the repository's documentation gate, run by CI.
// It enforces two rules:
//
//  1. Every Go package in the module has a package comment.
//  2. Every exported identifier in the public packages (the root gph
//     package and datagen) has a doc comment. An identifier inside a
//     documented const/var/type block counts as documented.
//
// Usage:
//
//	go run ./tools/doccheck [module root]
//
// Exits non-zero listing every violation, so missing docs fail the
// build instead of rotting silently.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// publicDirs are the packages whose exported API must be fully
// documented (rule 2); every other package only needs a package
// comment (rule 1).
var publicDirs = map[string]bool{".": true, "datagen": true}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == ".git" || name == "testdata" || strings.HasPrefix(name, "_") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		vs, err := checkDir(path, rel, publicDirs[filepath.ToSlash(rel)])
		if err != nil {
			return err
		}
		violations = append(violations, vs...)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

// checkDir parses the non-test Go files of one directory and applies
// the rules. Directories without Go files are skipped.
func checkDir(dir, rel string, public bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", rel, err)
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", rel, pkg.Name))
		}
		if !public {
			continue
		}
		for filename, f := range pkg.Files {
			for _, decl := range f.Decls {
				out = append(out, checkDecl(fset, filename, decl)...)
			}
		}
	}
	return out, nil
}

// checkDecl reports exported top-level identifiers lacking docs.
func checkDecl(fset *token.FileSet, filename string, decl ast.Decl) []string {
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", filename, p.Line, what, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return nil // method on an unexported type
		}
		report(d.Pos(), "function", d.Name.Name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
					report(sp.Pos(), "type", sp.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range sp.Names {
					if n.IsExported() && sp.Doc == nil && d.Doc == nil {
						report(n.Pos(), "value", n.Name)
					}
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether a method receiver names an exported
// type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}
